"""Kernel micro-benchmarks: TTM, TTV, MTTKRP and the contraction engines.

Baseline throughput numbers for the sparse-tensor x dense kernels the
paper's intro contrasts SpTC against, plus a vectorized-vs-sparta engine
comparison on the same workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import contract
from repro.tensor import random_tensor_fibered
from repro.tensor.ops import mttkrp, ttm, ttv


@pytest.fixture(scope="module")
def tensor():
    return random_tensor_fibered((80, 90, 100), 40_000, 1, 60, seed=241)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_ttm(benchmark, tensor, rng):
    m = rng.standard_normal((16, tensor.shape[1]))
    out = benchmark(ttm, tensor, m, 1)
    assert out.shape == (80, 16, 100)


def test_ttv(benchmark, tensor, rng):
    v = rng.standard_normal(tensor.shape[2])
    out = benchmark(ttv, tensor, v, 2)
    assert out.order == 2


def test_mttkrp(benchmark, tensor, rng):
    factors = [rng.standard_normal((d, 8)) for d in tensor.shape]
    out = benchmark(mttkrp, tensor, factors, 0)
    assert out.shape == (80, 8)


def test_engine_vectorized(benchmark, chicago2):
    res = benchmark.pedantic(
        lambda: contract(
            chicago2.x, chicago2.y, chicago2.cx, chicago2.cy,
            method="vectorized",
        ),
        rounds=3,
        iterations=1,
    )
    assert res.nnz > 0


def test_engine_sparta_element_granularity(benchmark, chicago2):
    """The faithful per-element loop — slower, kept for semantics."""
    res = benchmark.pedantic(
        lambda: contract(
            chicago2.x, chicago2.y, chicago2.cx, chicago2.cy,
            method="sparta", swap_larger_to_y=False,
            granularity="element",
        ),
        rounds=1,
        iterations=1,
    )
    assert res.nnz > 0


def test_two_phase_symbolic(benchmark, chicago2):
    from repro.core import two_phase_contract

    res = benchmark.pedantic(
        lambda: two_phase_contract(
            chicago2.x, chicago2.y, chicago2.cx, chicago2.cy
        ),
        rounds=2,
        iterations=1,
    )
    assert res.result.nnz > 0
