"""Shared fixtures for the benchmark harness.

Benchmarks run the same workloads as the experiment modules at a reduced
scale so ``pytest benchmarks/ --benchmark-only`` finishes in minutes.
Session-scoped fixtures cache the generated cases and the instrumented
profile the memory-simulation benchmarks consume.
"""

from __future__ import annotations

import pytest

from repro.core import contract
from repro.datasets import hubbard_case, make_case

#: default workload scale for benchmarks (experiments default higher)
BENCH_SCALE = 0.2


@pytest.fixture(scope="session")
def chicago2():
    """Chicago 2-Mode at benchmark scale."""
    return make_case("chicago", 2, scale=BENCH_SCALE, seed=0)


@pytest.fixture(scope="session")
def nips1():
    """NIPS 1-Mode at benchmark scale."""
    return make_case("nips", 1, scale=BENCH_SCALE, seed=0)


@pytest.fixture(scope="session")
def uracil3():
    """Uracil 3-Mode at benchmark scale (the search-dominated case)."""
    return make_case("uracil", 3, scale=BENCH_SCALE, seed=0)


@pytest.fixture(scope="session")
def nell2_profile():
    """Instrumented Sparta profile of Nell-2 2-Mode (for HM benches)."""
    case = make_case("nell2", 2, scale=BENCH_SCALE, seed=0)
    res = contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False,
    )
    return res.profile


@pytest.fixture(scope="session")
def vast1_profile():
    """Instrumented Sparta profile of Vast 1-Mode (Figure 8's workload)."""
    case = make_case("vast", 1, scale=BENCH_SCALE, seed=0)
    res = contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False,
    )
    return res.profile


@pytest.fixture(scope="session")
def hubbard1():
    """Hubbard SpTC1 (Figure 5's first case)."""
    return hubbard_case(1, scale=0.6, seed=0)
