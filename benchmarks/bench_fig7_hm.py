"""Figure 7 bench — policy comparison on heterogeneous memory.

Benchmarks the full five-policy simulation for one workload and asserts
the paper's ranking: DRAM-only >= Sparta >= Memory mode, Sparta > IAL and
Sparta > Optane-only.
"""

from __future__ import annotations

from repro.memory import (
    DEFAULT_IAL_LAG,
    HMSimulator,
    all_dram_placement,
    all_pmm_placement,
    dram,
    ial_schedule,
    pmm,
)
from repro.memory.devices import HeterogeneousMemory
from repro.memory.policies import sparta_policy_characterized


def _compare(profile):
    peak = max(profile.peak_bytes(), 1)
    hm = HeterogeneousMemory(
        dram=dram(max(int(peak * 0.5), 1)), pmm=pmm(peak * 20)
    )
    sim = HMSimulator(hm)
    return {
        "optane_only": sim.simulate(
            profile, all_pmm_placement()
        ).total_seconds,
        "dram_only": sim.simulate(
            profile, all_dram_placement()
        ).total_seconds,
        "sparta": sim.simulate(
            profile,
            sparta_policy_characterized(
                profile, sim, hm.dram.capacity_bytes
            ),
        ).total_seconds,
        "ial": sim.simulate_schedule(
            profile,
            ial_schedule(profile, hm.dram.capacity_bytes),
            lag_fraction=DEFAULT_IAL_LAG,
        ).total_seconds,
        "memory_mode": sim.simulate_memory_mode(profile).total_seconds,
    }


def test_fig7_policies(benchmark, nell2_profile):
    seconds = benchmark(_compare, nell2_profile)
    assert seconds["dram_only"] <= seconds["sparta"] * 1.001
    assert seconds["sparta"] < seconds["optane_only"]
    assert seconds["sparta"] < seconds["ial"]
    assert seconds["sparta"] <= seconds["memory_mode"] * 1.001
