"""Figure 9 bench — peak memory accounting and the §4.2 estimators.

Benchmarks the estimator pipeline and asserts Eq. 5 is exact for HtY and
Eq. 6 upper-bounds the measured HtA peak.
"""

from __future__ import annotations

from repro.core.profile import DataObject
from repro.experiments.memory_usage import run_case


def test_fig9_estimates(benchmark):
    row = benchmark.pedantic(
        lambda: run_case("chicago", 2, scale=0.2), rounds=2, iterations=1
    )
    assert row.peak_bytes > 0
    # Eq. 6 is an upper bound on the measured per-thread HtA peak.
    assert row.hta_estimate >= row.hta_measured
    # Output and inputs all contribute to the peak.
    for obj in (DataObject.X, DataObject.Y, DataObject.HTY, DataObject.Z):
        assert row.object_bytes.get(obj, 0) > 0
