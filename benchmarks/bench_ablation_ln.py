"""Ablation — LN (large-number) key compression (§3.3).

Sparta's hash tables key on a single int64 (the LN representation)
instead of the index tuple. This bench compares lookup throughput of the
two keyings over identical data; LN keys should win clearly ("having
unique identifiers is extremely important for a fast hash table search").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import linearize, random_tensor

DIMS = (50, 60, 70)
NNZ = 20_000
PROBES = 50_000


@pytest.fixture(scope="module")
def keyed_data():
    t = random_tensor(DIMS, NNZ, seed=7)
    ln_keys = linearize(t.indices, DIMS)
    tuple_keys = [tuple(int(v) for v in row) for row in t.indices]
    rng = np.random.default_rng(3)
    probe_rows = rng.integers(0, t.nnz, size=PROBES)
    return t, ln_keys, tuple_keys, probe_rows


def test_ln_keys(benchmark, keyed_data):
    t, ln_keys, _, probe_rows = keyed_data
    table = {int(k): i for i, k in enumerate(ln_keys)}
    probes = ln_keys[probe_rows]

    def lookup():
        hits = 0
        for k in probes:
            if int(k) in table:
                hits += 1
        return hits

    assert benchmark(lookup) == PROBES


def test_tuple_keys(benchmark, keyed_data):
    t, _, tuple_keys, probe_rows = keyed_data
    table = {k: i for i, k in enumerate(tuple_keys)}
    probes = [tuple(int(v) for v in t.indices[i]) for i in probe_rows]

    def lookup():
        hits = 0
        for k in probes:
            if k in table:
                hits += 1
        return hits

    assert benchmark(lookup) == PROBES


def test_ln_vectorized_lookup(benchmark, keyed_data):
    """The production path: vectorized chain walking over LN keys."""
    from repro.hashtable import ChainingHashTable, default_num_buckets

    _, ln_keys, _, probe_rows = keyed_data
    table = ChainingHashTable(
        default_num_buckets(ln_keys.shape[0]),
        capacity_hint=ln_keys.shape[0],
    )
    table.insert_many(ln_keys)
    probes = ln_keys[probe_rows]
    slots = benchmark(table.lookup_many, probes)
    assert (slots >= 0).all()
