"""Ablation — the "larger tensor as Y" rule (§3.3).

Sparta always hashes the larger operand: index searches are issued once
per X non-zero, so the smaller tensor should drive the loop. This bench
contracts an asymmetric pair both ways.
"""

from __future__ import annotations

import pytest

from repro.core import sparta
from repro.tensor import random_tensor_fibered


@pytest.fixture(scope="module")
def asymmetric_pair():
    small = random_tensor_fibered(
        (40, 40, 80, 80), 4_000, 2, 60, seed=11
    )
    big = random_tensor_fibered(
        (80, 80, 50, 50), 60_000, 2, 30_000, seed=12
    )
    return small, big


def test_small_x_big_y(benchmark, asymmetric_pair):
    """The rule's orientation: few probes into the big hash table."""
    small, big = asymmetric_pair
    res = benchmark.pedantic(
        lambda: sparta(small, big, (2, 3), (0, 1)),
        rounds=3, iterations=1,
    )
    assert res.nnz > 0


def test_big_x_small_y(benchmark, asymmetric_pair):
    """Anti-rule orientation: one probe per big-tensor non-zero."""
    small, big = asymmetric_pair
    res = benchmark.pedantic(
        lambda: sparta(big, small, (0, 1), (2, 3)),
        rounds=3, iterations=1,
    )
    assert res.nnz > 0


def test_swap_rule_recovers_orientation(asymmetric_pair):
    """swap_larger_to_y=True applied to the anti-rule orientation must
    produce the same tensor as computing it directly (transposed)."""
    small, big = asymmetric_pair
    direct = sparta(big, small, (0, 1), (2, 3), swap_larger_to_y=False)
    swapped = sparta(big, small, (0, 1), (2, 3), swap_larger_to_y=True)
    assert swapped.profile.counters.get("swapped_operands") == 1
    assert swapped.tensor.allclose(direct.tensor)
