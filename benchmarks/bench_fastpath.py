"""Fast-path benches: fused flat-batch kernel and HtY-cache reuse.

Two speedup claims are pinned here:

* ``granularity="subtensor"`` (the fused flat-batch kernel in
  ``repro/core/kernels.py``) vs the legacy per-sub-tensor Python loop
  (``granularity="subtensor_loop"``) on Table-3 workloads scaled to
  ~1e5 non-zeros in the many-small-fibers regime: geometric-mean
  speedup must be >= 3x for the Sparta engine.
* HtY/plan reuse across a :class:`~repro.core.sequence.ContractionSequence`
  that applies the same operand repeatedly (the sparse-chain use case):
  ``reuse_hty=True`` must be >= 1.5x faster than rebuilding HtY per step.

Run directly (``python benchmarks/bench_fastpath.py``) to write
``results/BENCH_fastpath.json``; under pytest the same measurements run
as assertions.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import contract
from repro.core.sequence import ContractionSequence
from repro.datasets import make_case
from repro.datasets.registry import SPECS
from repro.tensor import SparseTensor

#: (dataset, n_modes) cases with contract-key spaces large enough that the
#: per-sub-tensor driver loop, not the products, dominates. Capacity-limited
#: cases (chicago-2, nips-1: ~2.5k distinct contract keys) stay
#: product-bound and cannot show the fused win; they are covered for
#: correctness by the tier-1 suite instead.
FUSED_CASES = [("flickr", 2), ("delicious", 2), ("uber", 2), ("uracil", 2)]

TARGET_NNZ = 100_000
TARGET_FIBERS = TARGET_NNZ / 12  # ~12 nnz per X sub-tensor


def _best_of(fn, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fused_case(dataset, n_modes, seed=0):
    spec = SPECS[dataset]
    return make_case(
        dataset,
        n_modes,
        scale=TARGET_NNZ / spec.nnz,
        fiber_scale=TARGET_FIBERS / spec.x_fibers,
        seed=seed,
    )


def measure_fused():
    """Per-case fused-vs-loop timings for the Sparta engine."""
    rows = []
    for dataset, n_modes in FUSED_CASES:
        case = _fused_case(dataset, n_modes)

        def run(granularity):
            return contract(
                case.x, case.y, case.cx, case.cy,
                method="sparta", swap_larger_to_y=False,
                granularity=granularity,
            )

        fused = run("subtensor")
        loop = run("subtensor_loop")
        assert np.array_equal(fused.tensor.indices, loop.tensor.indices)
        assert np.array_equal(fused.tensor.values, loop.tensor.values)
        t_fused = _best_of(lambda: run("subtensor"))
        t_loop = _best_of(lambda: run("subtensor_loop"))
        rows.append(
            {
                "case": case.label,
                "nnz_x": case.x.nnz,
                "nnz_y": case.y.nnz,
                "nnz_z": fused.nnz,
                "loop_seconds": t_loop,
                "fused_seconds": t_fused,
                "speedup": t_loop / t_fused,
            }
        )
    return rows


def _chain_operands(seed=0):
    """A shape-preserving (permutation-like) Y and a small driver X.

    Each step contracts mode 1 of the running X against mode 0 of the
    same Y, so HtY for Y is rebuilt every step unless cached — the
    pattern iterative solvers and tensor-network sweeps produce.
    """
    rng = np.random.default_rng(seed)
    J, nnz_y, nnz_x = 150_000, 100_000, 2_000
    jrows = np.sort(rng.choice(J, nnz_y, replace=False))
    jcols = rng.permutation(J)[:nnz_y]
    y = SparseTensor(
        np.column_stack((jrows, jcols)), rng.standard_normal(nnz_y), (J, J)
    )
    xi = np.column_stack(
        (rng.integers(0, 60, nnz_x), rng.choice(jrows, nnz_x))
    )
    x = SparseTensor(xi, rng.standard_normal(nnz_x), (60, J))
    return x, y


def measure_sequence_cache(steps=6):
    """Cached vs uncached wall time for a 6-step contraction chain."""
    x, y = _chain_operands()
    seq = ContractionSequence(x)
    for _ in range(steps):
        seq.then(y, (1,), (0,))

    def run(reuse):
        return seq.run(
            method="sparta", swap_larger_to_y=False, reuse_hty=reuse
        )

    cached = run(True)
    uncached = run(False)
    assert np.array_equal(cached.tensor.indices, uncached.tensor.indices)
    assert np.array_equal(cached.tensor.values, uncached.tensor.values)
    t_cached = _best_of(lambda: run(True))
    t_uncached = _best_of(lambda: run(False))
    stats = cached.cache_stats
    return {
        "steps": steps,
        "nnz_y": y.nnz,
        "cached_seconds": t_cached,
        "uncached_seconds": t_uncached,
        "speedup": t_uncached / t_cached,
        "hty_hits": stats.hits,
        "hty_misses": stats.misses,
    }


def geomean(values):
    return float(np.exp(np.mean(np.log(values))))


# ----------------------------------------------------------------------
# pytest entry points


def test_fused_speedup_geomean():
    rows = measure_fused()
    g = geomean([r["speedup"] for r in rows])
    detail = ", ".join(f"{r['case']}: {r['speedup']:.2f}x" for r in rows)
    assert g >= 3.0, f"fused geomean {g:.2f}x < 3x ({detail})"


def test_sequence_cache_speedup():
    row = measure_sequence_cache()
    assert row["hty_misses"] == 1
    assert row["hty_hits"] == row["steps"] - 1
    assert row["speedup"] >= 1.5, (
        f"sequence cache speedup {row['speedup']:.2f}x < 1.5x"
    )


# ----------------------------------------------------------------------


def main():
    fused = measure_fused()
    seq = measure_sequence_cache()
    payload = {
        "fused": fused,
        "fused_geomean": geomean([r["speedup"] for r in fused]),
        "sequence_cache": seq,
    }
    out = Path(__file__).resolve().parent.parent / "results"
    out.mkdir(exist_ok=True)
    path = out / "BENCH_fastpath.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for row in fused:
        print(
            f"{row['case']:<24} loop {row['loop_seconds']:.3f}s  "
            f"fused {row['fused_seconds']:.3f}s  "
            f"{row['speedup']:.2f}x"
        )
    print(f"fused geomean: {payload['fused_geomean']:.2f}x")
    print(
        f"sequence cache ({seq['steps']} steps): "
        f"uncached {seq['uncached_seconds']:.3f}s  "
        f"cached {seq['cached_seconds']:.3f}s  {seq['speedup']:.2f}x"
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
