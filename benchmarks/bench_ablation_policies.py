"""Ablation — pattern-aware (Sparta) vs pattern-agnostic placement.

Sparta's §4.2 priority comes from the measured per-object placement
*sensitivity* (which folds in read/write direction and access pattern); a
bandwidth-aware policy ranks by raw traffic density. With a DRAM budget
that cannot hold everything, the pattern-aware policy should win or tie.
"""

from __future__ import annotations

import pytest

from repro.memory import HMSimulator, all_pmm_placement, dram, pmm
from repro.memory.devices import HeterogeneousMemory
from repro.memory.policies import sparta_policy_characterized
from repro.memory.policies.bandwidth_aware import bandwidth_aware_placement


@pytest.fixture(scope="module")
def sim_and_profile(nell2_profile):
    peak = max(nell2_profile.peak_bytes(), 1)
    hm = HeterogeneousMemory(
        dram=dram(max(int(peak * 0.35), 1)), pmm=pmm(peak * 20)
    )
    return HMSimulator(hm), nell2_profile


def test_sparta_policy(benchmark, sim_and_profile):
    sim, profile = sim_and_profile
    run = benchmark(
        lambda: sim.simulate(
            profile,
            sparta_policy_characterized(
                profile, sim, sim.hm.dram.capacity_bytes
            ),
        )
    )
    assert run.total_seconds > 0


def test_bandwidth_aware_policy(benchmark, sim_and_profile):
    sim, profile = sim_and_profile
    run = benchmark(
        lambda: sim.simulate(
            profile,
            bandwidth_aware_placement(
                profile, sim.hm.dram.capacity_bytes
            ),
        )
    )
    assert run.total_seconds > 0


def test_pattern_awareness_wins_or_ties(sim_and_profile):
    sim, profile = sim_and_profile
    cap = sim.hm.dram.capacity_bytes
    t_sparta = sim.simulate(
        profile, sparta_policy_characterized(profile, sim, cap)
    ).total_seconds
    t_bw = sim.simulate(
        profile, bandwidth_aware_placement(profile, cap)
    ).total_seconds
    t_optane = sim.simulate(
        profile, all_pmm_placement()
    ).total_seconds
    assert t_sparta <= t_bw * 1.001
    assert t_bw <= t_optane * 1.001  # still better than no DRAM at all
