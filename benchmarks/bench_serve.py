"""PR9 bench: the contraction service vs one-shot invocation.

Demonstrates the tentpole property: a persistent server amortizes
stage-1 HtY builds (worker-resident caches, batch affinity) and runs
requests on a warm process pool, so a stream of same-signature
requests clears at a multiple of the throughput of cold one-shot
``contract()`` calls — while staying bit-identical to them.

Measurements (written to ``BENCH_PR9.json``; the job fails when a
gate fails):

* a concurrency ladder (1/4/16) over the deterministic
  :class:`~repro.serve.loadgen.LoadSpec` mix, recording p50/p99
  latency and req/sec, with the concurrency-1 run verified
  bit-identical + Table-2-traffic-byte-exact against direct calls;
* ``warm_pool_2x_oneshot`` — at client concurrency 4, the warm
  service (pinned operands + HtY cache) sustains >= 2x the req/sec of
  cold one-shot ``contract()`` calls on the same Y-heavy workload;
* ``tracing_overhead_under_5pct`` — best-of-3 serial walls with
  request tracing on vs off differ by < 5%.

A sample request timeline is exported to ``SERVE_TRACE_SAMPLE.json``
(Chrome trace-event format, loadable in Perfetto). Skipped gates are
recorded as the string ``"skipped"``, never null — ``check_gates``
fails on null so a silently dropped gate cannot pass CI.

Usage: ``python benchmarks/bench_serve.py [--quick]``.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

WARM_FACTOR = 2.0
TRACE_FACTOR = 1.05
LADDER = (1, 4, 16)


def ladder_spec(quick: bool):
    from repro.serve import LoadSpec

    return LoadSpec(
        seed=9,
        requests=16 if quick else 32,
        datasets=("uber", "nips"),
        n_modes=3,
        scale=0.02 if quick else 0.08,
        tenants=("alpha", "beta"),
        distinct_cases=3,
    )


def service_pair(quick: bool):
    """A Y-heavy contraction: the HtY build dominates a cold call.

    This is the service's best case — and the honest one: a server
    exists precisely so that repeated requests against a pinned Y pay
    the stage-1 build once per worker instead of once per call.
    """
    from repro.tensor import random_tensor

    y_nnz = 250_000 if quick else 400_000
    x = random_tensor((12, 30, 40), 600, seed=91)
    y = random_tensor((30, 40, 24, 20), y_nnz, seed=92)
    return x, y, (1, 2), (0, 1)


def measure_ladder(quick: bool):
    """Latency quantiles + throughput across client concurrency."""
    from repro.serve import (
        LoadGenerator,
        ServeClient,
        ServeConfig,
        SpTCServer,
    )

    spec = ladder_spec(quick)
    rows = []
    cfg = ServeConfig(workers=2, execution="worker", tracing=False)
    with SpTCServer(cfg) as server:
        gen = LoadGenerator(ServeClient(server), spec=spec)
        gen.pin_all()
        verified = 0
        for concurrency in LADDER:
            report = gen.run(concurrency=concurrency)
            if report.failed:
                raise SystemExit(
                    f"ladder c={concurrency} failed requests: "
                    f"{report.errors}"
                )
            if concurrency == 1:
                verified = gen.verify(report)
            rows.append(report.summary())
        gen.unpin_all()
    return rows, verified


def measure_warm_vs_oneshot(quick: bool):
    """Warm-service vs cold one-shot req/sec at client concurrency 4."""
    from repro.core import contract
    from repro.serve import ServeConfig, SpTCServer

    x, y, cx, cy = service_pair(quick)
    concurrency = 4
    served_n = 16 if quick else 40
    oneshot_n = 8 if quick else 12

    def fan_out(n, fire):
        counter = iter(range(n))
        lock = threading.Lock()

        def loop():
            while True:
                with lock:
                    i = next(counter, None)
                if i is None:
                    return
                fire(i)

        threads = [
            threading.Thread(target=loop) for _ in range(concurrency)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return time.perf_counter() - t0

    # cold one-shot: every call rebuilds HtY from scratch, the way a
    # CLI invocation (ttt) would
    oneshot_wall = fan_out(
        oneshot_n, lambda i: contract(x, y, cx, cy)
    )
    oneshot_rps = oneshot_n / oneshot_wall

    cfg = ServeConfig(workers=2, execution="worker", tracing=False)
    options = {"use_hty_cache": True}
    with SpTCServer(cfg) as server:
        server.pin("bench-x", x)
        server.pin("bench-y", y)

        def served(_):
            server.submit_and_wait(
                "bench-x", "bench-y", cx, cy, options=options,
                timeout=300.0,
            )

        # warm-up: populate each worker's HtY cache (untimed)
        for _ in range(4):
            served(None)
        served_wall = fan_out(served_n, served)
    served_rps = served_n / served_wall
    speedup = served_rps / max(oneshot_rps, 1e-12)
    return {
        "concurrency": concurrency,
        "oneshot_requests": oneshot_n,
        "oneshot_wall_seconds": oneshot_wall,
        "oneshot_rps": round(oneshot_rps, 2),
        "served_requests": served_n,
        "served_wall_seconds": served_wall,
        "served_rps": round(served_rps, 2),
        "speedup": round(speedup, 3),
        "within_gate": speedup >= WARM_FACTOR,
    }


def measure_tracing_overhead(quick: bool, trace_path: Path):
    """Best-of-3 serial walls, request tracing on vs off."""
    from repro.serve import ServeConfig, SpTCServer

    x, y, cx, cy = service_pair(quick)
    n = 4 if quick else 8

    def best_wall(tracing: bool):
        cfg = ServeConfig(
            workers=1, execution="worker", tracing=tracing
        )
        walls, sample = [], None
        with SpTCServer(cfg) as server:
            server.pin("trace-x", x)
            server.pin("trace-y", y)
            for _ in range(3):
                t0 = time.perf_counter()
                for _ in range(n):
                    sample = server.submit_and_wait(
                        "trace-x", "trace-y", cx, cy, timeout=300.0
                    )
                walls.append(time.perf_counter() - t0)
        return min(walls), sample

    wall_off, _ = best_wall(False)
    wall_on, sample = best_wall(True)
    sample.write_trace(trace_path)
    ratio = wall_on / max(wall_off, 1e-12)
    return {
        "requests_per_run": n,
        "wall_tracing_off_seconds": wall_off,
        "wall_tracing_on_seconds": wall_on,
        "overhead_ratio": round(ratio, 4),
        "trace_sample": trace_path.name,
        "span_count": len(sample.records),
        "within_gate": ratio <= TRACE_FACTOR,
    }


def check_gates(gates):
    """Validate the gates dict; returns failure strings.

    Values may be measurements, booleans or ``"skipped"``; ``None``
    always fails (a dropped gate must never read as a pass).
    """
    failures = []
    for name, value in gates.items():
        if value is None:
            failures.append(
                f"{name}: null gate value (skipped gates must be "
                f"recorded as 'skipped')"
            )
            continue
        if value is False:
            failures.append(f"{name}: False")
    return failures


def run(*, quick: bool = False, trace_path: Path):
    ladder_rows, verified = measure_ladder(quick)
    warm = measure_warm_vs_oneshot(quick)
    tracing = measure_tracing_overhead(quick, trace_path)
    return {
        "bench": "pr9_contraction_service",
        "quick": quick,
        "warm_factor": WARM_FACTOR,
        "trace_factor": TRACE_FACTOR,
        "ladder": ladder_rows,
        "ladder_verified_requests": verified,
        "warm_vs_oneshot": warm,
        "tracing_overhead": tracing,
        "gates": {
            "served_results_verified": verified > 0,
            "warm_pool_2x_oneshot": warm["within_gate"],
            "tracing_overhead_under_5pct": tracing["within_gate"],
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller operands, fewer requests (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parent.parent
    trace_path = root / "SERVE_TRACE_SAMPLE.json"
    payload = run(quick=args.quick, trace_path=trace_path)
    path = root / "BENCH_PR9.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for row in payload["ladder"]:
        print(
            f"  c={row['concurrency']:<3} "
            f"p50 {row['p50_ms']:8.2f} ms  "
            f"p99 {row['p99_ms']:8.2f} ms  "
            f"{row['rps']:8.2f} req/s"
        )
    warm = payload["warm_vs_oneshot"]
    print(
        f"  warm service {warm['served_rps']} req/s vs one-shot "
        f"{warm['oneshot_rps']} req/s -> {warm['speedup']}x "
        f"(gate >= {WARM_FACTOR}x)"
    )
    tracing = payload["tracing_overhead"]
    print(
        f"  tracing overhead {tracing['overhead_ratio']}x "
        f"(gate <= {TRACE_FACTOR}x), "
        f"{tracing['span_count']} spans in {tracing['trace_sample']}"
    )
    print(f"wrote {path}")
    failures = check_gates(payload["gates"])
    if failures:
        for failure in failures:
            print(f"gate failure: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        "gates: "
        + " ".join(f"{k}={v}" for k, v in payload["gates"].items())
    )


if __name__ == "__main__":
    main()
