"""Figure 5 bench — element-wise Sparta vs block-sparse engine.

Benchmarks both engines on a Hubbard-2D case and asserts the Figure-5
relationship in *work* terms: the block engine executes several times
more FLOPs than the element-wise engine needs (the paper's 7.1x average),
because it does dense arithmetic on internally sparse blocks.
"""

from __future__ import annotations

from repro.baselines import block_contract, element_flops
from repro.core import contract


def test_fig5_block_engine(benchmark, hubbard1):
    res = benchmark(
        block_contract, hubbard1.x, hubbard1.y, hubbard1.cx, hubbard1.cy
    )
    assert res.tensor.num_blocks > 0


def test_fig5_element_engine(benchmark, hubbard1):
    x = hubbard1.x.to_coo()
    y = hubbard1.y.to_coo()
    res = benchmark.pedantic(
        lambda: contract(
            x, y, hubbard1.cx, hubbard1.cy,
            method="sparta", swap_larger_to_y=False,
        ),
        rounds=2,
        iterations=1,
    )
    assert res.nnz > 0


def test_fig5_work_ratio(hubbard1):
    block = block_contract(
        hubbard1.x, hubbard1.y, hubbard1.cx, hubbard1.cy
    )
    res = contract(
        hubbard1.x.to_coo(), hubbard1.y.to_coo(),
        hubbard1.cx, hubbard1.cy,
        method="vectorized",
    )
    ratio = block.flops / element_flops(
        res.profile.counters["products"]
    )
    # Paper: 6.3x-7.5x across the ten cases (average 7.1x).
    assert 3.0 < ratio < 20.0, f"work ratio {ratio:.1f}x out of range"
    # And the two engines agree numerically.
    assert res.tensor.allclose(
        block.tensor.to_coo().coalesce().prune(1e-12),
        rtol=1e-8, atol=1e-10,
    )
