"""Observability overhead gates: tracing off must cost (almost) nothing.

The tentpole contract of :mod:`repro.obs` is that an engine that is
not being watched behaves as if the tracing code did not exist. Three
gates pin that down:

* **no-op differential** — a run with ``tracer=None`` produces a
  :class:`~repro.core.profile.RunProfile` whose ``to_dict()`` (minus
  the never-reproducible ``stage_seconds``) is identical to a build
  without any tracer argument at all, and a bit-identical output
  tensor;
* **<2% wall-clock overhead** — min-of-N interleaved timings of the
  serial fused engine with ``tracer=None`` vs. the plain call must
  agree within 2% (plus a small absolute floor so micro-jitter on a
  sub-10ms workload cannot fail the gate spuriously);
* **enabled-tracer sanity** — with a real tracer the same run emits
  all five stage spans and remains numerically identical.

Run under pytest (``python -m pytest -q benchmarks/bench_obs.py``);
CI's bench-smoke job runs exactly that.
"""

from __future__ import annotations

import time

import pytest

from repro.core import contract
from repro.core.stages import STAGE_ORDER
from repro.datasets import make_case
from repro.obs import Tracer

#: relative overhead gate from the PR acceptance criteria
MAX_RELATIVE_OVERHEAD = 0.02
#: absolute floor (seconds) under which jitter, not overhead, dominates
ABS_FLOOR_SECONDS = 0.002
REPEATS = 7


@pytest.fixture(scope="module")
def case():
    return make_case("chicago", 2, scale=0.2, seed=0)


def _contract(case, **kwargs):
    return contract(
        case.x, case.y, case.cx, case.cy,
        method="sparta", swap_larger_to_y=False, **kwargs,
    )


def _strip(profile):
    d = profile.to_dict()
    d.pop("stage_seconds")
    return d


def test_disabled_tracer_profile_is_noop(case):
    base = _contract(case)
    off = _contract(case, tracer=None)
    assert _strip(off.profile) == _strip(base.profile)
    assert off.tensor.allclose(base.tensor)


def test_disabled_tracer_overhead_under_2pct(case):
    # interleave the two variants so drift (thermal, page cache) hits
    # both equally; compare min-of-N, the standard low-noise estimator
    _contract(case)  # warm caches once
    best_base = float("inf")
    best_off = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        _contract(case)
        best_base = min(best_base, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _contract(case, tracer=None)
        best_off = min(best_off, time.perf_counter() - t0)
    overhead = best_off - best_base
    allowed = max(
        MAX_RELATIVE_OVERHEAD * best_base, ABS_FLOOR_SECONDS
    )
    assert overhead <= allowed, (
        f"tracer=None costs {overhead * 1e3:.3f} ms over "
        f"{best_base * 1e3:.3f} ms baseline "
        f"({100 * overhead / best_base:.2f}% > 2%)"
    )


def test_enabled_tracer_spans_and_identical_output(case):
    base = _contract(case)
    tracer = Tracer()
    traced = _contract(case, tracer=tracer)
    names = [r.name for r in tracer.spans()]
    for stage in STAGE_ORDER:
        assert stage.value in names
    assert _strip(traced.profile) == _strip(base.profile)
    assert traced.tensor.allclose(base.tensor)
