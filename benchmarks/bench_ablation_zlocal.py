"""Ablation — thread-local Z_local buffers vs a shared output (§3.5).

With a dynamic output, threads cannot write into Z directly (its size is
unknown until every accumulator is final). Z_local lets each worker emit
results independently and sizes Z exactly before one parallel gather.
This bench compares the gather cost of many locals against one local
(the serial engine's layout) — the overhead of the §3.5 design is the
difference, and should be small.
"""

from __future__ import annotations

import pytest

from repro.core.common import LocalOutput, assemble_output
from repro.core.plan import ContractionPlan
from repro.core.profile import RunProfile
from repro.datasets import make_case
from repro.parallel import parallel_sparta


@pytest.fixture(scope="module")
def workload():
    return make_case("uber", 2, scale=0.2, seed=0)


@pytest.mark.parametrize("threads", [1, 4])
def test_zlocal_gather(benchmark, workload, threads):
    res = benchmark.pedantic(
        lambda: parallel_sparta(
            workload.x, workload.y, workload.cx, workload.cy,
            threads=threads,
        ),
        rounds=2,
        iterations=1,
    )
    assert res.result.nnz > 0


def test_gather_cost_scales_with_locals(workload):
    """Splitting one output across many locals must not change Z."""
    one = parallel_sparta(
        workload.x, workload.y, workload.cx, workload.cy, threads=1
    )
    many = parallel_sparta(
        workload.x, workload.y, workload.cx, workload.cy, threads=8
    )
    assert one.result.tensor.allclose(many.result.tensor)
