"""Figure 3 bench — single-object-in-PMM placement simulation.

Benchmarks the characterization sweep and asserts its observations:
X/Y placement is near-free, the hash structures are the most sensitive.
"""

from __future__ import annotations

from repro.core.profile import DataObject
from repro.memory import (
    HMSimulator,
    all_dram_placement,
    dram,
    pmm,
    single_object_pmm,
)
from repro.memory.devices import HeterogeneousMemory


def _sweep(profile):
    peak = max(profile.peak_bytes(), 1)
    hm = HeterogeneousMemory(dram=dram(peak * 2), pmm=pmm(peak * 20))
    sim = HMSimulator(hm)
    base = sim.simulate(profile, all_dram_placement()).total_seconds
    return base, {
        obj: sim.simulate(profile, single_object_pmm(obj)).total_seconds
        for obj in DataObject
    }


def test_fig3_characterization(benchmark, nell2_profile):
    base, singles = benchmark(_sweep, nell2_profile)
    slow = {obj: singles[obj] / base - 1.0 for obj in singles}
    # Observation 3: X and Y placement barely matters.
    assert slow[DataObject.Y] < 0.05
    # Hash structures dominate the placement sensitivity.
    assert slow[DataObject.HTY] > slow[DataObject.Y]
    assert slow[DataObject.HTA] > slow[DataObject.Y]
    # Everything placed in PMM is never faster than all-DRAM.
    assert all(s >= -1e-9 for s in slow.values())
