"""Figure 8 bench — device bandwidth timelines (Vast 1-mode).

Benchmarks timeline generation and asserts the paper's two observations:
IAL moves more PMM bytes than Sparta (migration traffic), Memory mode
moves more DRAM bytes than Sparta (cache fills).
"""

from __future__ import annotations

from repro.memory import (
    DEFAULT_IAL_LAG,
    HMSimulator,
    all_pmm_placement,
    dram,
    ial_schedule,
    pmm,
)
from repro.memory.devices import HeterogeneousMemory
from repro.memory.placement import DRAM, PMM
from repro.memory.policies import sparta_policy_characterized


def _device_bytes(run):
    totals = {DRAM: 0.0, PMM: 0.0}
    for st in run.stages:
        for dev, nbytes in st.device_bytes.items():
            totals[dev] += nbytes
    return totals


def test_fig8_bandwidth(benchmark, vast1_profile):
    profile = vast1_profile
    peak = max(profile.peak_bytes(), 1)
    hm = HeterogeneousMemory(
        dram=dram(max(int(peak * 0.5), 1)), pmm=pmm(peak * 20)
    )
    sim = HMSimulator(hm)

    def build():
        sparta = sim.simulate(
            profile,
            sparta_policy_characterized(
                profile, sim, hm.dram.capacity_bytes
            ),
        )
        ial = sim.simulate_schedule(
            profile,
            ial_schedule(profile, hm.dram.capacity_bytes),
            lag_fraction=DEFAULT_IAL_LAG,
        )
        mm = sim.simulate_memory_mode(profile)
        optane = sim.simulate(profile, all_pmm_placement())
        return sparta, ial, mm, optane

    sparta, ial, mm, optane = benchmark(build)
    # Timelines exist and end at the run duration.
    tl = sparta.bandwidth_timeline()
    assert len(tl) > 2 and tl[-1][0] > 0
    # Paper: IAL's PMM traffic exceeds Sparta's (migrations).
    assert _device_bytes(ial)[PMM] > _device_bytes(sparta)[PMM]
    # Paper: Memory mode's DRAM traffic exceeds Sparta's (cache fills).
    assert _device_bytes(mm)[DRAM] > _device_bytes(sparta)[DRAM]
    # Optane-only never touches DRAM.
    assert _device_bytes(optane)[DRAM] == 0.0
