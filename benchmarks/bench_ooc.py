"""PR8 bench: out-of-core execution under a hard memory budget.

Demonstrates the tentpole property: with ``memory_budget=`` set, the
contraction's resident-set growth stays pinned near the budget while
the input grows 10x — fused chunks spill to run files and the final
merge streams over mmaps — and a budget that *fits* in core costs
almost nothing over the unbudgeted run.

Gates (written to ``BENCH_PR8.json``; the job fails when one fails):

* ``ooc_rss_within_1_2x_budget`` — for every input size, peak RSS
  growth of the spilling run stays <= 1.2x the budget;
* ``in_core_budget_wall_within_1_3x`` — when the working set fits,
  running with a budget costs <= 1.3x the unbudgeted wall time;
* ``no_leaked_run_files`` — the spill tree is removed after clean runs
  AND after a run whose worker was force-killed mid-chunk.

Skipped gates are recorded as the string ``"skipped"``, never null —
``check_gates`` fails on null so a silently dropped gate cannot pass
CI (same contract as ``bench_planner.check_gates``).

Usage: ``python benchmarks/bench_ooc.py [--quick]``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

#: budget sized to cover the final COO output of the 10x case (which
#: must be resident no matter the strategy) plus working-set headroom
#: against allocator jitter; the in-core pipeline needs ~1.8x this
#: (recorded in the artifact as ``in_core_rss_at_10x``)
BUDGET = "128M"
BUDGET_BYTES = 128 << 20
RSS_FACTOR = 1.2
WALL_FACTOR = 1.3

#: (label, nnz_x) pairs — the second input is 10x the first
SIZES_FULL = (("base", 100_000), ("10x", 1_000_000))
SIZES_QUICK = (("base", 50_000), ("10x", 500_000))


def workload(nnz_x: int, seed: int = 1):
    """A contraction whose operands share a contract-key pool.

    The pool keeps X probes landing on real Y fibers, so products (and
    spill volume) scale with ``nnz_x`` — the axis the RSS gate grows.
    """
    from repro.datasets import make_large_tensor

    dims_c = (24, 28)
    pool = 600
    x = make_large_tensor(
        (nnz_x * 4,) + dims_c, nnz_x, seed=seed,
        pool_modes=2, pool_at="trail", pool_size=pool, pool_seed=7,
    )
    y = make_large_tensor(
        dims_c + (nnz_x * 6,), 2 * pool, seed=seed + 1,
        pool_modes=2, pool_at="lead", pool_size=pool, pool_seed=7,
    )
    return x, y, (1, 2), (0, 1)


def measure_ooc_rss(nnz_x: int):
    """One spilling run: peak RSS growth, wall, spill counters."""
    from repro.obs import PeakRssSampler, read_rss_bytes
    from repro.ooc import ooc_contract

    x, y, cx, cy = workload(nnz_x)
    rss_before = read_rss_bytes()
    with PeakRssSampler(interval=0.002) as sampler:
        t0 = time.perf_counter()
        res = ooc_contract(
            x, y, cx, cy, memory_budget=BUDGET, force_spill=True
        )
        wall = time.perf_counter() - t0
    delta = max(sampler.peak_bytes - rss_before, 0)
    c = res.profile.counters
    return {
        "nnz_x": nnz_x,
        "nnz_z": int(res.tensor.nnz),
        "wall_seconds": wall,
        "rss_before_bytes": int(rss_before),
        "peak_rss_bytes": int(sampler.peak_bytes),
        "rss_growth_bytes": int(delta),
        "rss_growth_vs_budget": delta / BUDGET_BYTES,
        "spill_bytes": int(c["ooc_spill_bytes"]),
        "run_files": int(c["ooc_run_files"]),
        "budget_peak_bytes": int(c["ooc_budget_peak_bytes"]),
        "within_gate": delta <= RSS_FACTOR * BUDGET_BYTES,
    }


def measure_in_core_rss(nnz_x: int):
    """RSS growth of the plain in-core run, for comparison only."""
    from repro.core import contract
    from repro.obs import PeakRssSampler, read_rss_bytes

    x, y, cx, cy = workload(nnz_x)
    rss_before = read_rss_bytes()
    with PeakRssSampler(interval=0.002) as sampler:
        contract(
            x, y, cx, cy, method="sparta", swap_larger_to_y=False
        )
    delta = max(sampler.peak_bytes - rss_before, 0)
    return {
        "nnz_x": nnz_x,
        "rss_growth_bytes": int(delta),
        "rss_growth_vs_budget": delta / BUDGET_BYTES,
    }


def measure_in_core_overhead(nnz_x: int, repeats: int):
    """Budgeted-but-fitting vs. unbudgeted wall time (best-of)."""
    from repro.core import contract

    x, y, cx, cy = workload(nnz_x)

    def best(**kwargs):
        walls = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = contract(
                x, y, cx, cy, method="sparta",
                swap_larger_to_y=False, **kwargs,
            )
            walls.append(time.perf_counter() - t0)
        return min(walls), res

    plain_wall, _ = best()
    budget_wall, budgeted = best(memory_budget="4G")
    assert budgeted.profile.flags["ooc"] == "in_core"
    ratio = budget_wall / max(plain_wall, 1e-12)
    return {
        "nnz_x": nnz_x,
        "repeats": repeats,
        "plain_wall_seconds": plain_wall,
        "budgeted_wall_seconds": budget_wall,
        "overhead_ratio": ratio,
        "within_gate": ratio <= WALL_FACTOR,
    }


def check_leaks(nnz_x: int):
    """No orphaned run files after a clean run or a worker crash."""
    import glob
    import tempfile

    from repro.faults import ANY, FaultPlan, FaultSpec
    from repro.ooc import ooc_contract
    from repro.parallel import parallel_sparta

    x, y, cx, cy = workload(nnz_x)
    with tempfile.TemporaryDirectory(prefix="bench-ooc-") as root:
        ooc_contract(
            x, y, cx, cy, memory_budget=BUDGET, force_spill=True,
            spill_root=root,
        )
        clean_ok = os.listdir(root) == []
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "kill", worker=0, stage="index_search", unit=ANY
                ),
            )
        )
        par = parallel_sparta(
            x, y, cx, cy, threads=2, backend="process",
            fault_plan=plan, memory_budget="16M", force_spill=True,
            spill_root=root,
        )
        crash_fired = (
            par.result.profile.counters.get("ft_worker_failures", 0)
            >= 1
        )
        crash_ok = os.listdir(root) == []
    stray = glob.glob(
        os.path.join(tempfile.gettempdir(), "sptc-ooc-*")
    )
    return {
        "clean_run_no_orphans": clean_ok,
        "crash_fired": crash_fired,
        "crash_run_no_orphans": crash_ok,
        "tmp_dir_strays": len(stray),
        "ok": clean_ok and crash_fired and crash_ok and not stray,
    }


def check_gates(gates):
    """Validate the gates dict; returns failure strings.

    Values may be measurements, booleans or ``"skipped"``; ``None``
    always fails (a dropped gate must never read as a pass).
    """
    failures = []
    for name, value in gates.items():
        if value is None:
            failures.append(
                f"{name}: null gate value (skipped gates must be "
                f"recorded as 'skipped')"
            )
            continue
        if value is False:
            failures.append(f"{name}: False")
    return failures


def run(*, quick: bool = False):
    sizes = SIZES_QUICK if quick else SIZES_FULL
    rss_rows = [
        dict(label=label, **measure_ooc_rss(nnz))
        for label, nnz in sizes
    ]
    # Reference point: what the in-core pipeline's RSS growth looks
    # like at the 10x size (not gated — it is *expected* to exceed the
    # budget; that is the point of spilling).
    in_core_ref = measure_in_core_rss(sizes[-1][1])
    overhead = measure_in_core_overhead(
        sizes[0][1], repeats=3 if quick else 7
    )
    leaks = check_leaks(sizes[0][1])
    return {
        "bench": "pr8_out_of_core_budget",
        "quick": quick,
        "budget": BUDGET,
        "budget_bytes": BUDGET_BYTES,
        "rss_factor": RSS_FACTOR,
        "wall_factor": WALL_FACTOR,
        "ooc_runs": rss_rows,
        "in_core_rss_at_10x": in_core_ref,
        "in_core_overhead": overhead,
        "leak_check": leaks,
        "gates": {
            "ooc_rss_within_1_2x_budget": all(
                r["within_gate"] for r in rss_rows
            ),
            "in_core_budget_wall_within_1_3x": overhead["within_gate"],
            "no_leaked_run_files": leaks["ok"],
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller inputs, fewer repeats (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    root = Path(__file__).resolve().parent.parent
    path = root / "BENCH_PR8.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for row in payload["ooc_runs"]:
        print(
            f"  {row['label']:<5} nnz_x={row['nnz_x']:>9,} "
            f"rss-growth {row['rss_growth_bytes'] / 2**20:7.1f} MiB "
            f"({row['rss_growth_vs_budget']:.2f}x budget) "
            f"spill {row['spill_bytes'] / 2**20:7.1f} MiB "
            f"wall {row['wall_seconds']:.3f}s"
        )
    ref = payload["in_core_rss_at_10x"]
    print(
        f"  in-core reference at 10x: "
        f"{ref['rss_growth_bytes'] / 2**20:7.1f} MiB "
        f"({ref['rss_growth_vs_budget']:.2f}x budget)"
    )
    ov = payload["in_core_overhead"]
    print(
        f"  in-core budget overhead: {ov['overhead_ratio']:.3f}x "
        f"(gate <= {WALL_FACTOR}x)"
    )
    print(f"  leak check: {payload['leak_check']}")
    print(f"wrote {path}")
    failures = check_gates(payload["gates"])
    if failures:
        for failure in failures:
            print(f"gate failure: {failure}", file=sys.stderr)
        raise SystemExit(1)
    print(
        "gates: "
        + " ".join(f"{k}={v}" for k, v in payload["gates"].items())
    )


if __name__ == "__main__":
    main()
