"""Figure 4 bench — the three engines on the same SpTC.

The benchmark table's ratios are the Figure-4 bars: COOY+SPA slowest,
COOY+HtA in between, HtY+HtA (Sparta) fastest. Explicit assertions pin
the ordering so a regression in any data structure fails the bench run.
"""

from __future__ import annotations

import time

from repro.core import contract


def _run(case, method):
    kwargs = {"swap_larger_to_y": False} if method == "sparta" else {}
    return contract(case.x, case.y, case.cx, case.cy, method=method, **kwargs)


def test_fig4_spa(benchmark, chicago2):
    benchmark.pedantic(_run, args=(chicago2, "spa"), rounds=2, iterations=1)


def test_fig4_coo_hta(benchmark, chicago2):
    benchmark.pedantic(
        _run, args=(chicago2, "coo_hta"), rounds=2, iterations=1
    )


def test_fig4_sparta(benchmark, chicago2):
    benchmark.pedantic(
        _run, args=(chicago2, "sparta"), rounds=2, iterations=1
    )


def test_fig4_vectorized(benchmark, chicago2):
    benchmark.pedantic(
        _run, args=(chicago2, "vectorized"), rounds=2, iterations=1
    )


def test_fig4_ordering(chicago2, uracil3):
    """Sparta beats COOY+SPA on every case; HtA alone helps less when
    index search dominates (Uracil 3-mode)."""
    for case in (chicago2, uracil3):
        t = {}
        for method in ("spa", "sparta"):
            t0 = time.perf_counter()
            _run(case, method)
            t[method] = time.perf_counter() - t0
        assert t["sparta"] < t["spa"], (
            f"{case.label}: sparta {t['sparta']:.3f}s not faster than "
            f"spa {t['spa']:.3f}s"
        )
