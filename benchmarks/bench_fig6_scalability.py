"""Figure 6 bench — parallel executor and scalability model.

Benchmarks the thread-pool engine (4 workers) and checks the model's
12-thread predictions stay in the paper's reported band.
"""

from __future__ import annotations

from repro.core import contract
from repro.parallel import ScalabilityModel, parallel_sparta


def test_fig6_parallel_executor(benchmark, nips1):
    res = benchmark.pedantic(
        lambda: parallel_sparta(
            nips1.x, nips1.y, nips1.cx, nips1.cy, threads=4
        ),
        rounds=2,
        iterations=1,
    )
    assert res.threads == 4
    assert res.load_imbalance < 2.0


def test_fig6_model_predictions(nips1):
    serial = contract(
        nips1.x, nips1.y, nips1.cx, nips1.cy,
        method="sparta", swap_larger_to_y=False,
    )
    model = ScalabilityModel()
    speedups = [
        model.predict(serial.profile, t).speedup for t in (1, 2, 4, 8, 12)
    ]
    # Monotonic, and the 12-thread point lands in the paper's band
    # (9.3x-10.7x measured; model within ~25% below accounts for our
    # workloads' different stage mix).
    assert all(b >= a for a, b in zip(speedups, speedups[1:]))
    assert speedups[0] == 1.0
    assert 6.0 < speedups[-1] <= 12.0
