"""Figure 6 bench — parallel executor and scalability model.

Benchmarks the thread-pool engine (4 workers), checks the model's
12-thread predictions stay in the paper's reported band, and — on
multi-core hosts — measures the shared-memory process backend's real
wall-clock speedup over the serial fused engine.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import contract
from repro.parallel import ScalabilityModel, parallel_sparta


def test_fig6_parallel_executor(benchmark, nips1):
    res = benchmark.pedantic(
        lambda: parallel_sparta(
            nips1.x, nips1.y, nips1.cx, nips1.cy, threads=4
        ),
        rounds=2,
        iterations=1,
    )
    assert res.threads == 4
    assert res.load_imbalance < 2.0


def test_fig6_process_backend(benchmark, nips1):
    """Measured process-backend run; correct on any host, timed on all."""
    res = benchmark.pedantic(
        lambda: parallel_sparta(
            nips1.x, nips1.y, nips1.cx, nips1.cy,
            threads=4, backend="process",
        ),
        rounds=2,
        iterations=1,
    )
    assert res.backend == "process"
    assert res.wall_seconds > 0.0
    serial = contract(
        nips1.x, nips1.y, nips1.cx, nips1.cy,
        method="sparta", swap_larger_to_y=False,
    )
    assert res.result.tensor.allclose(serial.tensor)


def test_fig6_process_speedup_multicore(nips1):
    """Measured >1.5x wall-clock at 4 workers — multi-core hosts only.

    Process-pool overhead (spawn + shm export) dominates on few cores,
    so the speedup claim is only checked where the paper's experiment is
    physically possible.
    """
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"needs >= 4 CPU cores to measure scaling, have {cores}")
    t0 = time.perf_counter()
    serial = contract(
        nips1.x, nips1.y, nips1.cx, nips1.cy,
        method="sparta", swap_larger_to_y=False,
    )
    serial_wall = time.perf_counter() - t0
    # Best-of-2 to smooth pool start-up jitter.
    walls = []
    for _ in range(2):
        par = parallel_sparta(
            nips1.x, nips1.y, nips1.cx, nips1.cy,
            threads=4, backend="process",
        )
        walls.append(par.wall_seconds)
    assert par.result.tensor.allclose(serial.tensor)
    speedup = serial_wall / max(min(walls), 1e-12)
    assert speedup > 1.5, (
        f"process backend speedup {speedup:.2f}x at 4 workers "
        f"(serial {serial_wall:.3f}s, parallel best {min(walls):.3f}s)"
    )


def test_fig6_allstage_speedup_multicore(nips1):
    """All-stage pipeline >2.0x at 4 workers — multi-core hosts only.

    The seed configuration (serial stage 1 + full output lexsort) caps
    below ~1.5x on this workload because the serial stages dominate by
    Amdahl; with partitioned HtY builds and merge-based output sorting
    the same 4 workers must clear 2.0x. ``benchmarks/bench_pr3.py``
    records the same comparison machine-readably in ``BENCH_PR3.json``.
    """
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"needs >= 4 CPU cores to measure scaling, have {cores}")
    t0 = time.perf_counter()
    serial = contract(
        nips1.x, nips1.y, nips1.cx, nips1.cy,
        method="sparta", swap_larger_to_y=False,
    )
    serial_wall = time.perf_counter() - t0

    def best_of(flags):
        walls = []
        for _ in range(2):
            par = parallel_sparta(
                nips1.x, nips1.y, nips1.cx, nips1.cy,
                threads=4, backend="process", **flags,
            )
            walls.append(par.wall_seconds)
        return min(walls), par

    seed_wall, _ = best_of(
        dict(parallel_stage1=False, merge_output=False)
    )
    all_wall, par = best_of({})
    assert par.result.tensor.allclose(serial.tensor)
    seed_speedup = serial_wall / max(seed_wall, 1e-12)
    all_speedup = serial_wall / max(all_wall, 1e-12)
    assert all_speedup > 2.0, (
        f"all-stage speedup {all_speedup:.2f}x at 4 workers "
        f"(seed path {seed_speedup:.2f}x, serial {serial_wall:.3f}s)"
    )
    assert all_speedup > seed_speedup, (
        f"all-stage {all_speedup:.2f}x should beat the serial-stage "
        f"seed path {seed_speedup:.2f}x"
    )


def test_fig6_model_predictions(nips1):
    serial = contract(
        nips1.x, nips1.y, nips1.cx, nips1.cy,
        method="sparta", swap_larger_to_y=False,
    )
    model = ScalabilityModel()
    speedups = [
        model.predict(serial.profile, t).speedup for t in (1, 2, 4, 8, 12)
    ]
    # Monotonic, and the 12-thread point lands in the paper's band
    # (9.3x-10.7x measured; model within ~25% below accounts for our
    # workloads' different stage mix).
    assert all(b >= a for a, b in zip(speedups, speedups[1:]))
    assert speedups[0] == 1.0
    assert 6.0 < speedups[-1] <= 12.0
