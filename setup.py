"""Shim for environments without the ``wheel`` package (offline installs).

``pip install -e . --no-use-pep517`` uses this; normal PEP-517 builds read
``pyproject.toml`` directly.
"""

from setuptools import setup

setup()
