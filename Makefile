# Convenience targets for development and reproduction.

.PHONY: install test bench validate experiments smoke clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

validate:
	python -m repro.experiments.validate

experiments:
	python -m repro.experiments.run_all --outdir results

experiments-fast:
	python -m repro.experiments.run_all --outdir results --fast

smoke:
	./scripts/test_run.sh

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
