"""Property-based tests for tensor operations and the einsum front end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import einsum
from repro.tensor import SparseTensor
from repro.tensor.hicoo import HiCOOTensor
from repro.tensor.ops import add, inner, multiply, norm, scale, subtract, ttv


@st.composite
def tensor_pair_same_shape(draw):
    order = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(2, 6)) for _ in range(order))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)

    def build(nnz):
        idx = np.column_stack(
            [rng.integers(0, d, size=nnz) for d in shape]
        ) if nnz else np.empty((0, order), dtype=np.int64)
        return SparseTensor(idx, rng.standard_normal(nnz), shape)

    return build(draw(st.integers(0, 25))), build(draw(st.integers(0, 25)))


@settings(max_examples=40, deadline=None)
@given(tensor_pair_same_shape())
def test_add_commutative(pair):
    a, b = pair
    assert add(a, b).allclose(add(b, a))


@settings(max_examples=40, deadline=None)
@given(tensor_pair_same_shape())
def test_multiply_commutative(pair):
    a, b = pair
    assert multiply(a, b).allclose(multiply(b, a))


@settings(max_examples=40, deadline=None)
@given(tensor_pair_same_shape())
def test_add_subtract_inverse(pair):
    a, b = pair
    assert subtract(add(a, b), b).to_dense() == pytest.approx(
        a.to_dense(), abs=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(tensor_pair_same_shape(), st.floats(-10, 10, allow_nan=False))
def test_scale_distributes_over_add(pair, alpha):
    a, b = pair
    left = scale(add(a, b), alpha)
    right = add(scale(a, alpha), scale(b, alpha))
    assert left.to_dense() == pytest.approx(
        right.to_dense(), abs=1e-8
    )


@settings(max_examples=40, deadline=None)
@given(tensor_pair_same_shape())
def test_cauchy_schwarz(pair):
    a, b = pair
    assert abs(inner(a, b)) <= norm(a) * norm(b) + 1e-9


@settings(max_examples=40, deadline=None)
@given(tensor_pair_same_shape(), st.integers(0, 2**31 - 1))
def test_ttv_linear_in_vector(pair, seed):
    a, _ = pair
    if a.order < 2:
        return
    rng = np.random.default_rng(seed)
    u = rng.standard_normal(a.shape[0])
    v = rng.standard_normal(a.shape[0])
    lhs = ttv(a, u + v, 0).to_dense()
    rhs = ttv(a, u, 0).to_dense() + ttv(a, v, 0).to_dense()
    assert lhs == pytest.approx(rhs, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(tensor_pair_same_shape(), st.integers(1, 7))
def test_hicoo_round_trip(pair, bits):
    a, _ = pair
    assert HiCOOTensor.from_coo(a, block_bits=bits).to_coo().allclose(
        a.coalesce()
    )


@st.composite
def einsum_case(draw):
    """A random valid two-operand einsum spec with matching tensors."""
    n_contract = draw(st.integers(1, 2))
    n_fx = draw(st.integers(1, 2))
    n_fy = draw(st.integers(1, 2))
    labels = "abcdefg"
    fx = labels[:n_fx]
    fy = labels[n_fx : n_fx + n_fy]
    shared = labels[n_fx + n_fy : n_fx + n_fy + n_contract]
    lx = fx + shared
    ly = shared + fy
    dims = {c: draw(st.integers(2, 5)) for c in labels}
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)

    def build(spec_labels):
        shape = tuple(dims[c] for c in spec_labels)
        nnz = draw(st.integers(0, 20))
        idx = np.column_stack(
            [rng.integers(0, d, size=nnz) for d in shape]
        ) if nnz else np.empty((0, len(shape)), dtype=np.int64)
        return SparseTensor(idx, rng.standard_normal(nnz), shape)

    out = "".join(
        draw(st.permutations(list(fx + fy)))
    )
    return f"{lx},{ly}->{out}", build(lx), build(ly)


@settings(max_examples=40, deadline=None)
@given(einsum_case())
def test_einsum_matches_numpy(case):
    spec, x, y = case
    res = einsum(spec, x, y, method="vectorized")
    ref = np.einsum(spec, x.to_dense(), y.to_dense())
    assert res.tensor.to_dense() == pytest.approx(ref, abs=1e-9)
