"""Cross-engine differential fuzzing.

Every engine in the repository computes the same contraction Z = X x Y,
so for any randomized case they must agree. For coalesced inputs the
hash-family engines (element / fused / subtensor_loop, SPA, COO+HtA,
vectorized, and both parallel backends) reduce each output key in the
same X-row order and are therefore *bit-identical*: same sorted index
array, same value bytes. The streaming engine and the dense tensordot
reference sum in a different order, so they are held to allclose only.

Each case is a deterministic function of an explicit seed; the seed is
part of the test id, so a failure report names the exact reproducing
case ("seed 17" reruns as ``-k 'seed17'``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import contract, contract_streaming, split_tensor
from repro.core.sparta import sparta
from repro.faults import FaultPlan
from repro.parallel import parallel_sparta
from repro.tensor import SparseTensor, random_tensor

#: explicit fuzz seeds — each is one randomized shape/density/mode case
SEEDS = tuple(range(12))

#: engines held to bit-identity against the element-wise reference
EXACT_ENGINES = (
    "fused",
    "subtensor_loop",
    "spa",
    "coo_hta",
    "vectorized",
    "parallel_thread",
    "parallel_process",
)


def make_case(seed: int):
    """Randomized contraction case: tensors, contract modes, density."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 3))  # number of contract modes
    fx = int(rng.integers(1, 3))  # free modes of X
    fy = int(rng.integers(1, 3))  # free modes of Y
    contract_dims = tuple(int(d) for d in rng.integers(2, 8, size=m))
    x_shape = tuple(int(d) for d in rng.integers(2, 8, size=fx)) \
        + contract_dims
    y_shape = contract_dims + tuple(
        int(d) for d in rng.integers(2, 8, size=fy)
    )
    # Vary density per case: from nearly empty to fairly dense.
    x_cap = int(np.prod(x_shape))
    y_cap = int(np.prod(y_shape))
    x_nnz = int(rng.integers(0, max(x_cap // 2, 2)))
    y_nnz = int(rng.integers(1, max(y_cap // 2, 2)))
    x = random_tensor(x_shape, x_nnz, seed=rng)
    y = random_tensor(y_shape, y_nnz, seed=rng)
    cx = tuple(range(fx, fx + m))
    cy = tuple(range(m))
    return x, y, cx, cy


def run_engine(name: str, x, y, cx, cy) -> SparseTensor:
    """Run one engine by differential-suite name, return sorted Z."""
    if name == "element":
        res = sparta(x, y, cx, cy, granularity="element")
    elif name == "fused":
        res = contract(
            x, y, cx, cy, method="sparta", swap_larger_to_y=False
        )
    elif name == "subtensor_loop":
        res = sparta(x, y, cx, cy, granularity="subtensor_loop")
    elif name in ("spa", "coo_hta", "vectorized"):
        res = contract(x, y, cx, cy, method=name)
    elif name == "parallel_thread":
        res = parallel_sparta(
            x, y, cx, cy, threads=3, planner="off"
        ).result
    elif name == "parallel_process":
        res = parallel_sparta(
            x, y, cx, cy, threads=2, backend="process", planner="off"
        ).result
    else:  # pragma: no cover - guard against typos in ENGINE lists
        raise ValueError(name)
    return res.tensor.sort()


def assert_bit_identical(z: SparseTensor, ref: SparseTensor, label: str):
    assert z.shape == ref.shape, label
    np.testing.assert_array_equal(
        z.indices, ref.indices, err_msg=f"{label}: index mismatch"
    )
    np.testing.assert_array_equal(
        z.values, ref.values, err_msg=f"{label}: value bytes differ"
    )


class TestDifferential:
    @pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
    def test_engines_bit_identical_to_element_reference(self, seed):
        x, y, cx, cy = make_case(seed)
        ref = run_engine("element", x, y, cx, cy)
        for name in EXACT_ENGINES:
            z = run_engine(name, x, y, cx, cy)
            assert_bit_identical(z, ref, f"seed={seed} engine={name}")

    @pytest.mark.parametrize(
        "seed", SEEDS[:6], ids=[f"seed{s}" for s in SEEDS[:6]]
    )
    def test_streaming_allclose(self, seed):
        x, y, cx, cy = make_case(seed)
        if y.nnz == 0:
            pytest.skip("streaming requires at least one Y partition")
        ref = run_engine("element", x, y, cx, cy)
        parts = split_tensor(y, max(min(y.nnz, 3), 1))
        res = contract_streaming(x, parts, cx, cy, method="sparta")
        assert res.tensor.allclose(ref, atol=1e-10), f"seed={seed}"

    @pytest.mark.parametrize(
        "seed", SEEDS[:6], ids=[f"seed{s}" for s in SEEDS[:6]]
    )
    def test_dense_reference_allclose(self, seed):
        x, y, cx, cy = make_case(seed)
        ref = run_engine("element", x, y, cx, cy)
        res = contract(x, y, cx, cy, method="dense")
        assert res.tensor.allclose(ref, atol=1e-10), f"seed={seed}"

    def test_parallel_backends_identical_across_worker_counts(self):
        x, y, cx, cy = make_case(3)
        ref = run_engine("element", x, y, cx, cy)
        for backend in ("thread", "process"):
            for workers in (1, 2, 5):
                par = parallel_sparta(
                    x, y, cx, cy, threads=workers, backend=backend,
                    planner="off",
                )
                assert_bit_identical(
                    par.result.tensor.sort(), ref,
                    f"backend={backend} workers={workers}",
                )

    @pytest.mark.parametrize(
        "seed", SEEDS[:8], ids=[f"seed{s}" for s in SEEDS[:8]]
    )
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_stage15_flags_bit_identical(self, seed, backend):
        # The parallel stage-1 HtY build and the merge-based stage-5
        # sort must not perturb a single byte, in any flag combination.
        x, y, cx, cy = make_case(seed)
        ref = run_engine("element", x, y, cx, cy)
        for parallel_stage1 in (False, True):
            for merge_output in (False, True):
                par = parallel_sparta(
                    x, y, cx, cy,
                    threads=3, backend=backend,
                    parallel_stage1=parallel_stage1,
                    merge_output=merge_output,
                    planner="off",
                )
                assert_bit_identical(
                    par.result.tensor.sort(), ref,
                    f"seed={seed} backend={backend} "
                    f"stage1={parallel_stage1} merge={merge_output}",
                )

    def test_parallel_stage1_worker_count_sweep(self):
        # Partial-build spans shift with the worker count; the merged
        # HtY — and thus the output — must not.
        x, y, cx, cy = make_case(7)
        ref = run_engine("element", x, y, cx, cy)
        for workers in (1, 2, 3, 4, 6):
            par = parallel_sparta(
                x, y, cx, cy, threads=workers, backend="thread",
                parallel_stage1=True, planner="off",
            )
            assert_bit_identical(
                par.result.tensor.sort(), ref, f"workers={workers}"
            )


def traffic_cells(profile):
    """Table-2 cells: (object, stage, kind, pattern) → total bytes."""
    cells = {}
    for rec in profile.traffic:
        key = (rec.obj, rec.stage, rec.kind, rec.pattern)
        cells[key] = cells.get(key, 0) + rec.nbytes
    return cells


class TestCodegenDifferential:
    """Generated-kernel axis: specialization must be unobservable.

    The per-signature kernels (packed quicksort, dense workspace,
    specialized delinearizer) are pure wall-clock optimizations — the
    output bytes AND every Table-2 traffic cell must match the generic
    fused path and the element reference exactly, on every fuzz case
    and on both sides of the dense-workspace threshold.
    """

    @pytest.mark.parametrize(
        "seed", SEEDS, ids=[f"seed{s}" for s in SEEDS]
    )
    def test_codegen_bit_identical_and_traffic_exact(self, seed):
        x, y, cx, cy = make_case(seed)
        ref = run_engine("element", x, y, cx, cy)
        runs = {
            "generic": contract(
                x, y, cx, cy, method="sparta", codegen=False
            ),
            "codegen": contract(
                x, y, cx, cy, method="sparta", codegen=True
            ),
            "dense": contract(
                x, y, cx, cy, method="sparta", codegen=True,
                dense_threshold=0.0,
            ),
            "never_dense": contract(
                x, y, cx, cy, method="sparta", codegen=True,
                dense_threshold=float("inf"),
            ),
        }
        base = traffic_cells(runs["generic"].profile)
        for label, res in runs.items():
            assert_bit_identical(
                res.tensor.sort(), ref, f"seed={seed} {label}"
            )
            assert traffic_cells(res.profile) == base, (
                f"seed={seed} {label}: Table-2 traffic cells differ"
            )
        if x.nnz and y.nnz and runs["codegen"].tensor.nnz:
            c = runs["dense"].profile.counters
            assert c.get("codegen_dense_chunks", 0) > 0
            c = runs["never_dense"].profile.counters
            assert c.get("codegen_dense_chunks", 0) == 0

    @pytest.mark.parametrize(
        "seed", SEEDS[:6], ids=[f"seed{s}" for s in SEEDS[:6]]
    )
    def test_codegen_parallel_thread_bit_identical(self, seed):
        x, y, cx, cy = make_case(seed)
        ref = run_engine("element", x, y, cx, cy)
        for codegen in (False, True):
            par = parallel_sparta(
                x, y, cx, cy, threads=3, codegen=codegen,
                planner="off",
            )
            assert_bit_identical(
                par.result.tensor.sort(), ref,
                f"seed={seed} parallel codegen={codegen}",
            )

    def test_kill_switch_disables_specialization(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
        x, y, cx, cy = make_case(2)
        ref = run_engine("element", x, y, cx, cy)
        res = contract(x, y, cx, cy, method="sparta", codegen=True)
        assert_bit_identical(res.tensor.sort(), ref, "kill-switch")
        counters = res.profile.counters
        assert not any(k.startswith("codegen_") for k in counters)
        assert "kernel_cache_hits" not in counters
        assert "kernel_cache_misses" not in counters


#: fault-fuzz seeds — each derives one random (kind, stage, worker,
#: unit) fault via FaultPlan.from_seed plus one contraction case
FAULT_SEEDS = tuple(range(10))


@pytest.mark.faults
class TestFaultDifferential:
    """Fuzz axis over fault plans: a disturbed run must equal serial.

    Each seed draws a random fault (crash, delay, or corruption at a
    random stage/worker/chunk) and a random contraction case, and the
    recovered run is held to the same bit-identity bar as the
    undisturbed engines. Plans from ``FaultPlan.from_seed`` pin a
    concrete worker, so every fault is recoverable without degrading —
    recovery itself must reproduce the exact bytes.
    """

    @pytest.mark.parametrize(
        "backend,workers", [("thread", 3), ("process", 2)]
    )
    @pytest.mark.parametrize(
        "fseed", FAULT_SEEDS, ids=[f"fault{s}" for s in FAULT_SEEDS]
    )
    def test_faulty_run_bit_identical_to_serial(
        self, fseed, backend, workers
    ):
        x, y, cx, cy = make_case(fseed % len(SEEDS))
        ref = run_engine("element", x, y, cx, cy)
        plan = FaultPlan.from_seed(fseed, workers=workers)
        par = parallel_sparta(
            x, y, cx, cy,
            threads=workers, backend=backend, fault_plan=plan,
        )
        assert_bit_identical(
            par.result.tensor.sort(), ref,
            f"fseed={fseed} backend={backend} "
            f"plan={plan.specs[0].to_dict()}",
        )
        assert "degraded" not in par.result.profile.flags

    @pytest.mark.parametrize(
        "fseed", FAULT_SEEDS[:5], ids=[f"fault{s}" for s in FAULT_SEEDS[:5]]
    )
    def test_faulty_run_identical_with_serial_fallback_allowed(
        self, fseed
    ):
        # on_failure="serial" must also be bit-identical when recovery
        # does degrade (and when it doesn't need to).
        x, y, cx, cy = make_case((fseed + 3) % len(SEEDS))
        ref = run_engine("element", x, y, cx, cy)
        plan = FaultPlan.from_seed(fseed, workers=2)
        par = parallel_sparta(
            x, y, cx, cy,
            threads=2, backend="process",
            fault_plan=plan, on_failure="serial",
        )
        assert_bit_identical(
            par.result.tensor.sort(), ref, f"fseed={fseed} serial-ok"
        )


class TestPlannerDifferential:
    """Planner axis: ``plan="auto"`` must be unobservable in the bytes.

    The cost model may only pick *which* engine runs — the output index
    array, the value bytes, and every Table-2 traffic cell must equal
    the explicit-knob run of whatever schedule it chose (and therefore
    the element-wise reference, since every hash-family engine is
    already pinned bit-identical above).
    """

    @pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
    def test_auto_bit_identical_and_traffic_exact(self, seed):
        x, y, cx, cy = make_case(seed)
        ref = run_engine("element", x, y, cx, cy)
        auto = contract(
            x, y, cx, cy, method="sparta", plan="auto", max_workers=4
        )
        assert_bit_identical(
            auto.tensor.sort(), ref, f"seed={seed} plan=auto"
        )
        chosen = auto.profile.flags["planner"]
        assert chosen.startswith("auto:")
        engine = chosen.split(":", 1)[1]
        if engine == "serial":
            explicit = contract(
                x, y, cx, cy, method="sparta", swap_larger_to_y=False
            )
        else:
            workers = auto.profile.counters["planner_workers"]
            explicit = parallel_sparta(
                x, y, cx, cy,
                threads=workers, backend=engine, planner="off",
            ).result
        assert_bit_identical(
            auto.tensor.sort(), explicit.tensor.sort(),
            f"seed={seed} auto vs explicit {chosen}",
        )
        auto_cells = {
            k: v for k, v in traffic_cells(auto.profile).items()
        }
        explicit_cells = traffic_cells(explicit.profile)
        assert auto_cells == explicit_cells, (
            f"seed={seed}: plan=auto Table-2 cells differ from the "
            f"explicit {chosen} run"
        )

    @pytest.mark.parametrize(
        "seed", SEEDS[:6], ids=[f"seed{s}" for s in SEEDS[:6]]
    )
    def test_auto_traffic_equals_every_explicit_schedule(self, seed):
        # stronger: auto's cells equal every explicit hash-family
        # schedule's cells, not just the chosen one — the traffic
        # accounting is schedule-invariant, so the planner can never
        # shift a single byte between Table-2 cells
        x, y, cx, cy = make_case(seed)
        auto = contract(
            x, y, cx, cy, method="sparta", plan="auto", max_workers=4
        )
        base = traffic_cells(auto.profile)
        for label, res in (
            ("serial", contract(
                x, y, cx, cy, method="sparta", swap_larger_to_y=False
            )),
            ("thread3", parallel_sparta(
                x, y, cx, cy, threads=3, planner="off"
            ).result),
            ("process2", parallel_sparta(
                x, y, cx, cy, threads=2, backend="process",
                planner="off",
            ).result),
        ):
            assert traffic_cells(res.profile) == base, (
                f"seed={seed} {label}"
            )

    def test_auto_records_decision_counters(self):
        x, y, cx, cy = make_case(4)
        res = contract(
            x, y, cx, cy, method="sparta", plan="auto", max_workers=4
        )
        assert res.profile.flags["planner"].startswith("auto:")
        assert res.profile.counters["planner_candidates"] >= 2
        assert res.profile.counters["planner_workers"] >= 1
        assert "planner_est_products" in res.profile.counters


class TestOocDifferential:
    """Out-of-core axis: a memory budget must be unobservable in bytes.

    ``contract(memory_budget=...)`` routes through the spill layer —
    fused chunks go to run files and stage 5 becomes a streaming merge
    over mmaps — yet the output index array, the value bytes AND every
    Table-2 traffic cell must equal the in-core run's exactly, for the
    serial engine and both parallel backends. ``force_spill=True`` pins
    the spilling path even for these small fuzz cases.
    """

    @pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
    def test_serial_ooc_bit_identical_and_traffic_exact(self, seed):
        x, y, cx, cy = make_case(seed)
        base = contract(
            x, y, cx, cy, method="sparta", swap_larger_to_y=False
        )
        ooc = contract(
            x, y, cx, cy, method="sparta", swap_larger_to_y=False,
            memory_budget="256K", force_spill=True,
        )
        assert ooc.profile.flags.get("ooc") == "spill", f"seed={seed}"
        assert_bit_identical(
            ooc.tensor, base.tensor, f"seed={seed} serial-ooc"
        )
        assert traffic_cells(ooc.profile) == traffic_cells(
            base.profile
        ), f"seed={seed}: Table-2 traffic cells differ under spilling"

    @pytest.mark.parametrize(
        "backend,workers", [("thread", 3), ("process", 2)]
    )
    @pytest.mark.parametrize(
        "seed", SEEDS[:4], ids=[f"seed{s}" for s in SEEDS[:4]]
    )
    def test_parallel_ooc_bit_identical_and_traffic_exact(
        self, seed, backend, workers
    ):
        x, y, cx, cy = make_case(seed)
        base = parallel_sparta(
            x, y, cx, cy, threads=workers, backend=backend,
            planner="off",
        )
        ooc = parallel_sparta(
            x, y, cx, cy, threads=workers, backend=backend,
            planner="off", memory_budget="256K", force_spill=True,
        )
        assert ooc.result.profile.flags.get("ooc") == "spill"
        assert_bit_identical(
            ooc.result.tensor.sort(), base.result.tensor.sort(),
            f"seed={seed} backend={backend} ooc",
        )
        assert traffic_cells(ooc.result.profile) == traffic_cells(
            base.result.profile
        ), f"seed={seed} backend={backend}: traffic differs"

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_in_core_budget_changes_nothing_but_counters(self, seed):
        # A generous budget must stay fully in-core: identical bytes,
        # identical traffic, just the budget counters added on top.
        x, y, cx, cy = make_case(seed)
        base = contract(
            x, y, cx, cy, method="sparta", swap_larger_to_y=False
        )
        res = contract(
            x, y, cx, cy, method="sparta", swap_larger_to_y=False,
            memory_budget="4G",
        )
        assert res.profile.flags.get("ooc") == "in_core"
        assert res.profile.counters["ooc_plan_out_of_core"] == 0
        assert_bit_identical(res.tensor, base.tensor, f"seed={seed}")
        assert traffic_cells(res.profile) == traffic_cells(
            base.profile
        )


@pytest.mark.faults
class TestOocFaultDifferential:
    """Spilled runs must survive worker kills and payload corruption."""

    @pytest.mark.parametrize("kind", ["kill", "corrupt"])
    def test_ooc_process_fault_recovery_bit_identical(self, kind):
        from repro.faults import ANY, FaultSpec

        x, y, cx, cy = make_case(5)
        ref = run_engine("element", x, y, cx, cy)
        # Kill fires on the stage grouping; corrupt perturbs the
        # payload at the accumulation site (see repro.faults).
        stage = "index_search" if kind == "kill" else "accumulation"
        plan = FaultPlan(
            specs=(FaultSpec(kind, worker=0, stage=stage, unit=ANY),)
        )
        par = parallel_sparta(
            x, y, cx, cy, threads=2, backend="process",
            fault_plan=plan, memory_budget="256K", force_spill=True,
        )
        prof = par.result.profile
        assert prof.flags.get("ooc") == "spill"
        counter = (
            "ft_worker_failures" if kind == "kill"
            else "ft_corrupt_payloads"
        )
        assert prof.counters.get(counter, 0) >= 1, (
            f"{kind} fault never fired"
        )
        assert "degraded" not in prof.flags
        assert_bit_identical(
            par.result.tensor.sort(), ref, f"ooc-{kind}-recovery"
        )

    @pytest.mark.parametrize("fseed", FAULT_SEEDS[:5])
    def test_ooc_random_fault_bit_identical(self, fseed):
        x, y, cx, cy = make_case(fseed % len(SEEDS))
        ref = run_engine("element", x, y, cx, cy)
        plan = FaultPlan.from_seed(fseed, workers=2)
        par = parallel_sparta(
            x, y, cx, cy, threads=2, backend="process",
            fault_plan=plan, memory_budget="256K", force_spill=True,
        )
        assert_bit_identical(
            par.result.tensor.sort(), ref, f"ooc-fault fseed={fseed}"
        )
        assert "degraded" not in par.result.profile.flags


SERVE_OPTION_SETS = (
    ("default", {}),
    ("plan_auto", {"plan": "auto"}),
    (
        "parallel",
        {
            "method": "parallel",
            "threads": 2,
            "backend": "thread",
            "planner": "off",
        },
    ),
)


class TestServeDifferential:
    """Served contractions vs direct ``contract()`` — same options.

    The server routes the request (registry pin, fair queue, warm
    worker) but the worker runs the literal public ``contract()``, so
    every served result must be bit-identical and Table-2-traffic
    byte-exact to a direct call. Operands ride shared-memory handles
    when non-empty to exercise the zero-copy path.
    """

    @pytest.fixture(scope="class")
    def serve_server(self):
        from repro.serve import ServeConfig, SpTCServer

        with SpTCServer(
            ServeConfig(workers=2, tracing=False)
        ) as server:
            yield server

    @pytest.mark.parametrize(
        "optname,options",
        SERVE_OPTION_SETS,
        ids=[name for name, _ in SERVE_OPTION_SETS],
    )
    @pytest.mark.parametrize(
        "seed", SEEDS[:6], ids=[f"seed{s}" for s in SEEDS[:6]]
    )
    def test_served_bit_identical_and_traffic_exact(
        self, serve_server, seed, optname, options
    ):
        x, y, cx, cy = make_case(seed)
        direct = contract(x, y, cx, cy, **options)
        handles = []
        refs = []
        for tensor, suffix in ((x, "x"), (y, "y")):
            if tensor.nnz:  # zero-size segments cannot be pinned
                name = f"df-{optname}-s{seed}-{suffix}"
                serve_server.pin(name, tensor)
                handles.append(name)
                refs.append(name)
            else:
                refs.append(tensor)
        try:
            resp = serve_server.submit_and_wait(
                refs[0], refs[1], cx, cy,
                options=dict(options), timeout=120.0,
            )
        finally:
            for name in handles:
                serve_server.unpin(name)
        label = f"seed={seed} options={optname}"
        assert_bit_identical(
            resp.tensor.sort(), direct.tensor.sort(), label
        )
        assert traffic_cells(resp.profile) == traffic_cells(
            direct.profile
        ), label
        assert resp.retries == 0 and not resp.degraded
