"""Property-based tests (hypothesis) on core invariants.

Strategies build small random tensors and contractions; every engine must
agree with the dense tensordot reference, and the core data structures
must satisfy their algebraic invariants on arbitrary inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import contract
from repro.hashtable import (
    ChainingHashTable,
    HashAccumulator,
    SparseAccumulator,
)
from repro.tensor import (
    CSFTensor,
    SparseTensor,
    delinearize,
    linearize,
)

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
dims_st = st.lists(st.integers(2, 6), min_size=1, max_size=4).map(tuple)


@st.composite
def sparse_tensor(draw, max_order=4, max_dim=6, max_nnz=30):
    order = draw(st.integers(1, max_order))
    shape = tuple(
        draw(st.integers(2, max_dim)) for _ in range(order)
    )
    nnz = draw(st.integers(0, max_nnz))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    idx = np.column_stack(
        [rng.integers(0, d, size=nnz) for d in shape]
    ) if nnz else np.empty((0, order), dtype=np.int64)
    vals = rng.standard_normal(nnz)
    return SparseTensor(idx, vals, shape)


@st.composite
def contraction_pair(draw):
    """A compatible (x, y, cx, cy) quadruple."""
    n_contract = draw(st.integers(1, 2))
    contract_dims = tuple(
        draw(st.integers(2, 5)) for _ in range(n_contract)
    )
    n_fx = draw(st.integers(1, 2))
    n_fy = draw(st.integers(1, 2))
    fx_dims = tuple(draw(st.integers(2, 5)) for _ in range(n_fx))
    fy_dims = tuple(draw(st.integers(2, 5)) for _ in range(n_fy))
    x_shape = fx_dims + contract_dims
    y_shape = contract_dims + fy_dims
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    nnz_x = draw(st.integers(0, 25))
    nnz_y = draw(st.integers(0, 25))

    def build(shape, nnz):
        idx = np.column_stack(
            [rng.integers(0, d, size=nnz) for d in shape]
        ) if nnz else np.empty((0, len(shape)), dtype=np.int64)
        return SparseTensor(idx, rng.standard_normal(nnz), shape)

    cx = tuple(range(n_fx, n_fx + n_contract))
    cy = tuple(range(n_contract))
    return build(x_shape, nnz_x), build(y_shape, nnz_y), cx, cy


# ----------------------------------------------------------------------
# contraction correctness
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(contraction_pair())
def test_all_engines_match_dense(pair):
    x, y, cx, cy = pair
    ref = contract(x, y, cx, cy, method="dense")
    for method in ("spa", "coo_hta", "sparta", "vectorized"):
        res = contract(x, y, cx, cy, method=method)
        assert res.tensor.allclose(
            ref.tensor, rtol=1e-9, atol=1e-11
        ), method


@settings(max_examples=25, deadline=None)
@given(contraction_pair())
def test_contraction_is_bilinear_in_x(pair):
    x, y, cx, cy = pair
    two_x = SparseTensor(x.indices, 2.0 * x.values, x.shape)
    r1 = contract(x, y, cx, cy, method="vectorized")
    r2 = contract(two_x, y, cx, cy, method="vectorized")
    assert np.allclose(
        2.0 * r1.tensor.to_dense(), r2.tensor.to_dense(), atol=1e-9
    )


# ----------------------------------------------------------------------
# tensor invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(sparse_tensor())
def test_sort_preserves_semantics(t):
    assert t.sort().to_dense() == pytest.approx(t.to_dense())
    assert t.sort().is_sorted()


@settings(max_examples=50, deadline=None)
@given(sparse_tensor())
def test_coalesce_idempotent(t):
    c = t.coalesce()
    cc = c.coalesce()
    assert c.nnz == cc.nnz
    assert c.to_dense() == pytest.approx(t.to_dense())


@settings(max_examples=50, deadline=None)
@given(sparse_tensor(max_order=3))
def test_dense_round_trip(t):
    back = SparseTensor.from_dense(t.to_dense())
    assert back.to_dense() == pytest.approx(t.to_dense())


@settings(max_examples=30, deadline=None)
@given(sparse_tensor(max_order=3, max_nnz=25))
def test_csf_round_trip(t):
    assert CSFTensor.from_coo(t).to_coo().allclose(t.coalesce())


@settings(max_examples=50, deadline=None)
@given(sparse_tensor())
def test_permutation_round_trip(t):
    order = t.order
    perm = list(reversed(range(order)))
    inverse = [perm.index(i) for i in range(order)]
    assert t.permute(perm).permute(inverse).allclose(t)


# ----------------------------------------------------------------------
# LN linearization
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(dims_st, st.integers(0, 50), st.integers(0, 2**31 - 1))
def test_ln_round_trip(dims, n, seed):
    rng = np.random.default_rng(seed)
    idx = np.column_stack(
        [rng.integers(0, d, size=n) for d in dims]
    ) if n else np.empty((0, len(dims)), dtype=np.int64)
    keys = linearize(idx, dims)
    assert np.array_equal(delinearize(keys, dims), idx)


@settings(max_examples=60, deadline=None)
@given(dims_st, st.integers(1, 60), st.integers(0, 2**31 - 1))
def test_ln_injective(dims, n, seed):
    rng = np.random.default_rng(seed)
    idx = np.unique(
        np.column_stack([rng.integers(0, d, size=n) for d in dims]),
        axis=0,
    )
    keys = linearize(idx, dims)
    assert np.unique(keys).shape[0] == idx.shape[0]


# ----------------------------------------------------------------------
# hash table / accumulators
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 10**12), min_size=0, max_size=200),
    st.integers(1, 64),
)
def test_chaining_table_matches_dict(keys, buckets):
    table = ChainingHashTable(buckets)
    reference = {}
    for key in keys:
        slot, created = table.insert(key)
        if key in reference:
            assert not created
            assert reference[key] == slot
        else:
            assert created
            reference[key] = slot
    assert len(table) == len(reference)
    for key, slot in reference.items():
        assert table.lookup(key) == slot


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 30),
            st.floats(-100, 100, allow_nan=False),
        ),
        min_size=0,
        max_size=150,
    )
)
def test_accumulators_match_dict(items):
    hta = HashAccumulator()
    spa = SparseAccumulator()
    reference = {}
    for key, val in items:
        hta.add(key, val)
        spa.add(key, val)
        reference[key] = reference.get(key, 0.0) + val
    for acc in (hta, spa):
        keys, vals = acc.export()
        assert len(keys) == len(reference)
        for k, v in zip(keys, vals):
            assert v == pytest.approx(reference[int(k)], abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 40), min_size=1, max_size=100),
    st.integers(0, 2**31 - 1),
)
def test_accumulator_batch_equals_scalar(keys, seed):
    rng = np.random.default_rng(seed)
    vals = rng.standard_normal(len(keys))
    batch = HashAccumulator()
    batch.add_many(
        np.asarray(keys, dtype=np.int64), vals
    )
    scalar = HashAccumulator()
    for k, v in zip(keys, vals):
        scalar.add(int(k), float(v))
    bk, bv = batch.export()
    sk, sv = scalar.export()
    assert dict(zip(bk.tolist(), bv.tolist())) == pytest.approx(
        dict(zip(sk.tolist(), sv.tolist()))
    )
