"""ooc_contract: flags, counters, spill placement and cleanup."""

from __future__ import annotations

import glob
import os
import tempfile

import numpy as np
import pytest

from repro.core import contract
from repro.ooc import MemoryBudget, ooc_contract
from repro.tensor import SparseTensor
from repro.tensor.random import random_tensor_fibered


@pytest.fixture(scope="module")
def pair():
    x = random_tensor_fibered((12, 14, 16, 18), 1200, 2, 48, seed=91)
    y = random_tensor_fibered((16, 18, 10, 12), 2000, 2, 200, seed=92)
    return x, y, (2, 3), (0, 1)


def _no_orphans(root):
    return not glob.glob(os.path.join(root, "sptc-ooc-*"))


class TestOocEngine:
    def test_spill_flags_and_counters(self, pair):
        x, y, cx, cy = pair
        res = ooc_contract(
            x, y, cx, cy, memory_budget="1M", force_spill=True
        )
        prof = res.profile
        assert prof.flags["ooc"] == "spill"
        assert prof.counters["ooc_plan_out_of_core"] == 1
        assert prof.counters["ooc_spill_bytes"] > 0
        assert prof.counters["ooc_run_files"] >= 1
        assert prof.counters["ooc_budget_cap_bytes"] == 1 << 20
        assert prof.counters["ooc_budget_peak_bytes"] > 0

    def test_shared_budget_instance_accumulates(self, pair):
        x, y, cx, cy = pair
        budget = MemoryBudget("8M")
        ooc_contract(
            x, y, cx, cy, memory_budget=budget, force_spill=True
        )
        first = budget.charges
        assert first > 0
        ooc_contract(
            x, y, cx, cy, memory_budget=budget, force_spill=True
        )
        assert budget.charges > first
        assert budget.used == 0, "runs must release what they charge"

    def test_spill_root_honored_and_cleaned(self, pair, tmp_path):
        x, y, cx, cy = pair
        root = str(tmp_path)
        res = ooc_contract(
            x, y, cx, cy, memory_budget="1M", force_spill=True,
            spill_root=root,
        )
        assert res.profile.counters["ooc_spill_bytes"] > 0
        assert _no_orphans(root), "spill dir leaked under spill_root"
        assert os.listdir(root) == []

    def test_no_orphans_in_default_tmp(self, pair):
        x, y, cx, cy = pair
        before = set(glob.glob(
            os.path.join(tempfile.gettempdir(), "sptc-ooc-*")
        ))
        ooc_contract(x, y, cx, cy, memory_budget="1M", force_spill=True)
        after = set(glob.glob(
            os.path.join(tempfile.gettempdir(), "sptc-ooc-*")
        ))
        assert after <= before, "orphaned spill dirs left in tmp"

    def test_empty_x(self):
        x = SparseTensor(
            np.empty((0, 3), dtype=np.int64),
            np.empty(0, dtype=np.float64),
            (4, 5, 6),
        )
        y = random_tensor_fibered((6, 7), 20, 1, 5, seed=3)
        res = ooc_contract(
            x, y, (2,), (0,), memory_budget="1M", force_spill=True
        )
        assert res.tensor.nnz == 0

    def test_nosort_matches_in_core(self, pair):
        x, y, cx, cy = pair
        base = contract(
            x, y, cx, cy, method="sparta", swap_larger_to_y=False,
            sort_output=False,
        )
        ooc = ooc_contract(
            x, y, cx, cy, memory_budget="1M", force_spill=True,
            sort_output=False,
        )
        np.testing.assert_array_equal(
            ooc.tensor.indices, base.tensor.indices
        )
        np.testing.assert_array_equal(
            ooc.tensor.values, base.tensor.values
        )

    @pytest.mark.faults
    def test_parallel_worker_crash_leaves_no_run_files(self, tmp_path):
        # A killed worker abandons an unsealed run file; recovery must
        # still remove the whole spill tree at the end of the run.
        from repro.faults import ANY, FaultPlan, FaultSpec
        from repro.parallel import parallel_sparta

        x = random_tensor_fibered((12, 14, 16, 18), 1200, 2, 48, seed=91)
        y = random_tensor_fibered((16, 18, 10, 12), 2000, 2, 200, seed=92)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "kill", worker=0, stage="index_search", unit=ANY
                ),
            )
        )
        root = str(tmp_path)
        par = parallel_sparta(
            x, y, (2, 3), (0, 1), threads=2, backend="process",
            fault_plan=plan, memory_budget="1M", force_spill=True,
            spill_root=root,
        )
        assert par.result.profile.counters["ft_worker_failures"] >= 1
        assert os.listdir(root) == [], "run files leaked after crash"
