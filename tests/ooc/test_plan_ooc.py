"""Spill-aware planning: in-core vs. out-of-core routing and sizing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.htycache import cached_plan
from repro.planner import OocDecision, contraction_stats, plan_ooc
from repro.tensor.random import random_tensor_fibered


@pytest.fixture(scope="module")
def stats():
    x = random_tensor_fibered((12, 14, 16, 18), 1200, 2, 48, seed=91)
    y = random_tensor_fibered((16, 18, 10, 12), 2000, 2, 200, seed=92)
    plan = cached_plan(x, y, (2, 3), (0, 1))
    return contraction_stats(x, y, plan)


class TestPlanOoc:
    def test_generous_budget_stays_in_core(self, stats):
        d = plan_ooc(stats, 4 << 30)
        assert isinstance(d, OocDecision)
        assert not d.out_of_core
        assert d.est_spill_bytes == 0
        assert "fits budget" in d.reason

    def test_tiny_budget_goes_out_of_core(self, stats):
        d = plan_ooc(stats, 64 << 10)
        assert d.out_of_core
        assert d.est_spill_bytes > 0
        assert d.est_spill_seconds > 0
        assert "exceeds budget" in d.reason

    def test_force_spill_overrides_fit(self, stats):
        d = plan_ooc(stats, 4 << 30, force_spill=True)
        assert d.out_of_core
        assert d.reason == "forced"

    def test_smaller_budget_means_more_partitions(self, stats):
        small = plan_ooc(stats, 256 << 10)
        large = plan_ooc(stats, 1 << 30)
        assert small.num_chunks >= large.num_chunks
        assert small.num_y_spans >= large.num_y_spans
        assert small.chunk_pairs <= large.chunk_pairs

    def test_workers_shrink_per_worker_chunks(self, stats):
        solo = plan_ooc(stats, 16 << 20, workers=1)
        team = plan_ooc(stats, 16 << 20, workers=8)
        assert team.chunk_pairs <= solo.chunk_pairs

    def test_counters_shape(self, stats):
        d = plan_ooc(stats, 1 << 20)
        c = d.counters()
        assert set(c) == {
            "ooc_plan_out_of_core",
            "ooc_plan_est_peak_bytes",
            "ooc_plan_num_y_spans",
            "ooc_plan_num_chunks",
            "ooc_plan_chunk_pairs",
        }
        assert all(v >= 0 for v in c.values())

    def test_estimate_scales_with_input(self):
        from repro.planner import estimate_in_core_peak

        small_x = random_tensor_fibered((8, 8, 8), 100, 1, 10, seed=1)
        small_y = random_tensor_fibered((8, 8, 8), 150, 1, 20, seed=2)
        big_x = random_tensor_fibered((32, 32, 32), 8000, 1, 80, seed=1)
        big_y = random_tensor_fibered((32, 32, 32), 12000, 1, 160, seed=2)
        s_small = contraction_stats(
            small_x, small_y, cached_plan(small_x, small_y, (2,), (0,))
        )
        s_big = contraction_stats(
            big_x, big_y, cached_plan(big_x, big_y, (2,), (0,))
        )
        assert estimate_in_core_peak(s_big) > estimate_in_core_peak(
            s_small
        )
