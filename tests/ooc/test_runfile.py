"""Run-file format: roundtrip, sealing, crash and corruption handling."""

from __future__ import annotations

import os
import struct

import numpy as np
import pytest

from repro.errors import SpillError
from repro.ooc import (
    FusedRunRef,
    RunFileReader,
    RunFileWriter,
    SpillManager,
    load_fused_ref,
    spill_fused_range,
)


def _arrays(seed, n):
    rng = np.random.default_rng(seed)
    return {
        "fgrp": np.sort(rng.integers(0, 50, size=n)).astype(np.int64),
        "fy": rng.integers(0, 100, size=n).astype(np.int64),
        "vals": rng.standard_normal(n),
    }


class TestRunFileRoundtrip:
    def test_multi_run_roundtrip_bytes(self, tmp_path):
        path = str(tmp_path / "t.run")
        runs = [_arrays(s, n) for s, n in ((0, 17), (1, 0), (2, 999))]
        w = RunFileWriter(path)
        for r in runs:
            w.append_run(r)
        w.close()
        assert w.run_count == 3
        r = RunFileReader(path)
        assert r.num_runs == 3
        for i, orig in enumerate(runs):
            got = r.run(i)
            assert set(got) == set(orig)
            for k in orig:
                assert got[k].dtype == orig[k].dtype
                assert got[k].tobytes() == orig[k].tobytes()
        r.close()

    def test_reader_views_are_memmaps(self, tmp_path):
        path = str(tmp_path / "t.run")
        w = RunFileWriter(path)
        w.append_run(_arrays(3, 100))
        w.close()
        r = RunFileReader(path)
        got = r.run(0)
        assert any(
            isinstance(a, np.memmap) for a in got.values()
        ), "reader should hand out mmap-backed views"
        r.close()

    def test_unsealed_file_rejected(self, tmp_path):
        path = str(tmp_path / "t.run")
        w = RunFileWriter(path)
        w.append_run(_arrays(4, 50))
        # crash before close(): no directory/trailer was appended
        w._fh.flush()  # simulate data hitting disk without the seal
        os_level = open(path, "rb").read()
        assert len(os_level) > 0
        with pytest.raises(SpillError):
            RunFileReader(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "t.run")
        w = RunFileWriter(path)
        w.append_run(_arrays(5, 50))
        w.close()
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) - 7])
        with pytest.raises(SpillError):
            RunFileReader(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "t.run")
        open(path, "wb").write(b"NOTARUN!" + b"\0" * 64)
        with pytest.raises(SpillError):
            RunFileReader(path)


class TestFusedSpill:
    def test_spill_and_load_roundtrip(self, tmp_path):
        from repro.core.kernels import FusedRange

        arrays = _arrays(6, 300)
        fr = FusedRange(
            out_fgrp=arrays["fgrp"],
            out_fy=arrays["fy"],
            out_vals=arrays["vals"],
            products=1234,
            accum_probes=77,
            max_group_output=9,
            spa_peak_bytes=4096,
            search_seconds=0.5,
            accum_seconds=0.25,
        )
        path = str(tmp_path / "chunk.run")
        ref = spill_fused_range(fr, path)
        assert isinstance(ref, FusedRunRef)
        assert ref.nnz == 300 and ref.products == 1234
        back = load_fused_ref(ref)
        assert back.out_fgrp.tobytes() == fr.out_fgrp.tobytes()
        assert back.out_fy.tobytes() == fr.out_fy.tobytes()
        assert back.out_vals.tobytes() == fr.out_vals.tobytes()
        assert back.products == fr.products
        assert back.accum_probes == fr.accum_probes
        assert back.search_seconds == fr.search_seconds

    def test_load_unsealed_ref_raises(self, tmp_path):
        path = str(tmp_path / "chunk.run")
        open(path, "wb").write(b"SPTCRUN1")  # header only, no seal
        ref = FusedRunRef(
            path=path, nnz=10, products=0, accum_probes=0,
            max_group_output=0, spa_peak_bytes=0,
            search_seconds=0.0, accum_seconds=0.0,
        )
        with pytest.raises(SpillError):
            load_fused_ref(ref)


class TestSpillManager:
    def test_lifecycle_and_counters(self, tmp_path):
        spill = SpillManager(str(tmp_path))
        root = spill.root
        assert os.path.isdir(root)
        assert os.path.basename(root).startswith("sptc-ooc-")
        w = spill.writer("a.run")
        w.append_run(_arrays(7, 64))
        w.close()
        spill.account(w)
        c = spill.counters()
        assert c["ooc_run_files"] == 1
        assert c["ooc_runs"] == 1
        assert c["ooc_spill_bytes"] > 0
        spill.close()
        assert not os.path.exists(root)
        spill.close()  # idempotent

    def test_unique_paths(self, tmp_path):
        with SpillManager(str(tmp_path)) as spill:
            p1 = spill.path("chunk.run")
            p2 = spill.path("chunk.run")
            assert p1 != p2

    def test_account_file(self, tmp_path):
        with SpillManager(str(tmp_path)) as spill:
            path = spill.path("b.run")
            w = RunFileWriter(path)
            w.append_run(_arrays(8, 32))
            w.append_run(_arrays(9, 8))
            w.close()
            spill.account_file(path).close()
            c = spill.counters()
            assert c["ooc_runs"] == 2
            assert c["ooc_spill_bytes"] == os.path.getsize(path)
