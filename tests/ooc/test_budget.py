"""MemoryBudget accounting and budget-string parsing."""

from __future__ import annotations

import pytest

from repro.errors import MemoryBudgetError, ShapeError
from repro.ooc import MemoryBudget, parse_budget


class TestParseBudget:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            (1048576, 1 << 20),
            (1048576.0, 1 << 20),
            ("1048576", 1 << 20),
            ("64K", 64 << 10),
            ("64kb", 64 << 10),
            ("64KiB", 64 << 10),
            ("2M", 2 << 20),
            ("1.5G", int(1.5 * (1 << 30))),
            ("3GiB", 3 << 30),
            (" 512 mb ", 512 << 20),
        ],
    )
    def test_accepted(self, spec, expected):
        assert parse_budget(spec) == expected

    @pytest.mark.parametrize(
        "spec", ["", "x", "12X", "-5", "1..5G", "G", None]
    )
    def test_rejected(self, spec):
        with pytest.raises((ShapeError, TypeError)):
            parse_budget(spec)


class TestMemoryBudget:
    def test_charge_release_peak(self):
        b = MemoryBudget("1M")
        assert b.cap == 1 << 20
        b.charge("a", 100)
        b.charge("b", 200)
        assert b.used == 300
        b.release("a", 100)
        assert b.used == 200
        assert b.peak == 300
        c = b.counters()
        assert c["ooc_budget_cap_bytes"] == 1 << 20
        assert c["ooc_budget_peak_bytes"] == 300
        assert c["ooc_budget_overruns"] == 0
        assert c["ooc_budget_charges"] == 2

    def test_overrun_counts_but_continues(self):
        b = MemoryBudget(100)
        b.charge("big", 1000)
        assert b.counters()["ooc_budget_overruns"] == 1
        assert b.peak == 1000

    def test_strict_overrun_raises(self):
        b = MemoryBudget(100, strict=True)
        with pytest.raises(MemoryBudgetError):
            b.charge("big", 1000)

    def test_hold_context_releases(self):
        b = MemoryBudget("1M")
        with b.hold("tmp", 500):
            assert b.used == 500
        assert b.used == 0
        assert b.peak == 500

    def test_fits_and_remaining(self):
        b = MemoryBudget(1000)
        assert b.fits(1000)
        b.charge("x", 600)
        assert b.remaining == 400
        assert b.fits(400) and not b.fits(401)

    def test_share_floor(self):
        b = MemoryBudget("64M")
        assert b.share(0.5) == 32 << 20
        # tiny fractions are floored so stages always get workable room
        assert b.share(1e-9) == 1 << 20
