"""Tests for the CCSD-like quantum-chemistry generators."""

import numpy as np
import pytest

from repro.datasets import eri_tensor, t2_amplitudes
from repro.errors import ShapeError


class TestT2:
    def test_shape(self):
        t = t2_amplitudes(8, 14, seed=1)
        assert t.shape == (8, 8, 14, 14)

    def test_cutoff_enforced(self):
        t = t2_amplitudes(8, 14, cutoff=1e-8, seed=1)
        assert (np.abs(t.values) > 1e-8).all()

    def test_stronger_decay_sparser(self):
        loose = t2_amplitudes(10, 16, decay=0.3, seed=2)
        tight = t2_amplitudes(10, 16, decay=1.5, seed=2)
        assert tight.nnz < loose.nnz

    def test_diagonal_dominance(self):
        # Local correlation: near-diagonal occupied pairs carry more
        # amplitude weight than distant pairs.
        t = t2_amplitudes(12, 10, decay=0.8, seed=3)
        dense = np.abs(t.to_dense())
        near = dense[range(12), range(12)].mean()
        far = dense[0, 11].mean() + dense[11, 0].mean()
        assert near > far

    def test_deterministic(self):
        a = t2_amplitudes(6, 8, seed=4)
        b = t2_amplitudes(6, 8, seed=4)
        assert a.allclose(b)

    def test_bad_sizes(self):
        with pytest.raises(ShapeError):
            t2_amplitudes(0, 5)
        with pytest.raises(ShapeError):
            t2_amplitudes(5, -1)


class TestERI:
    def test_shape(self):
        v = eri_tensor(6, 10, seed=5)
        assert v.shape == (10, 10, 10, 10)

    def test_contractable_with_t2(self):
        from repro.core import contract

        t2 = t2_amplitudes(5, 8, decay=1.0, seed=6)
        v = eri_tensor(5, 8, decay=1.2, seed=7)
        # Particle-particle ladder: sum_ab t2[i,j,a,b] v[a,b,c,d].
        res = contract(t2, v, (2, 3), (0, 1), method="vectorized")
        ref = np.tensordot(
            t2.to_dense(), v.to_dense(), axes=((2, 3), (0, 1))
        )
        assert res.tensor.to_dense() == pytest.approx(ref, abs=1e-10)

    def test_bad_sizes(self):
        with pytest.raises(ShapeError):
            eri_tensor(5, 0)
