"""Tests for the Hubbard-2D (Table 4) generators."""

import pytest

from repro.baselines import block_contract
from repro.datasets import all_cases, hubbard_case
from repro.errors import ShapeError


class TestGeneration:
    def test_ten_cases(self):
        cases = all_cases(scale=0.4)
        assert len(cases) == 10
        assert [c.index for c in cases] == list(range(1, 11))

    def test_table4_structure(self):
        case = hubbard_case(1, scale=0.4)
        assert case.x.order == 5  # Table 4: X is order 5
        assert case.y.order == 4  # Y is order 4
        assert case.y.shape == (24, 36, 4, 4)

    def test_contract_modes_aligned(self):
        for case in all_cases(scale=0.3):
            for mx, my in zip(case.cx, case.cy):
                assert case.x.shape[mx] == case.y.shape[my]
                assert case.x.block_shape[mx] == case.y.block_shape[my]

    def test_cutoff_applied(self):
        case = hubbard_case(2, scale=0.4, cutoff=1e-8)
        coo = case.x.to_coo()
        assert (abs(coo.values) > 1e-8).all()

    def test_bigger_cutoff_sparser(self):
        loose = hubbard_case(3, scale=0.4, cutoff=1e-8)
        tight = hubbard_case(3, scale=0.4, cutoff=1e-1)
        assert tight.x.nnz < loose.x.nnz

    def test_deterministic(self):
        a = hubbard_case(4, scale=0.4, seed=1)
        b = hubbard_case(4, scale=0.4, seed=1)
        assert a.x.to_coo().allclose(b.x.to_coo())

    def test_intra_block_sparsity(self):
        # The property Figure 5 relies on: blocks are internally sparse.
        case = hubbard_case(5, scale=0.4)
        density = case.x.nnz / max(case.x.stored_elements, 1)
        assert density < 0.6

    def test_bad_index(self):
        with pytest.raises(ShapeError):
            hubbard_case(0)
        with pytest.raises(ShapeError):
            hubbard_case(11)

    def test_label(self):
        assert hubbard_case(7, scale=0.3).label == "SpTC7"


class TestContractable:
    @pytest.mark.parametrize("index", [1, 4, 8, 10])
    def test_block_contraction_runs(self, index):
        case = hubbard_case(index, scale=0.3)
        res = block_contract(case.x, case.y, case.cx, case.cy)
        assert res.flops > 0
