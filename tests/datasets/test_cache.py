"""Tests for the on-disk dataset cache."""

from repro.datasets.cache import case_files, clear_cache


class TestCache:
    def test_materializes_and_reloads(self, tmp_path):
        files = case_files(
            "uber", 2, scale=0.05, cache_dir=tmp_path
        )
        assert files.x.exists() and files.y.exists()
        x, y = files.load()
        assert x.nnz > 0 and y.nnz > 0
        assert len(files.cx) == len(files.cy) == 2

    def test_reuses_existing_files(self, tmp_path):
        a = case_files("uber", 2, scale=0.05, cache_dir=tmp_path)
        mtime = a.x.stat().st_mtime_ns
        b = case_files("uber", 2, scale=0.05, cache_dir=tmp_path)
        assert b.x.stat().st_mtime_ns == mtime

    def test_refresh_rewrites(self, tmp_path):
        a = case_files("uber", 2, scale=0.05, cache_dir=tmp_path)
        before = a.x.stat().st_mtime_ns
        b = case_files(
            "uber", 2, scale=0.05, cache_dir=tmp_path, refresh=True
        )
        assert b.x.stat().st_mtime_ns >= before

    def test_distinct_keys_per_config(self, tmp_path):
        a = case_files("uber", 1, scale=0.05, cache_dir=tmp_path)
        b = case_files("uber", 2, scale=0.05, cache_dir=tmp_path)
        c = case_files("uber", 2, scale=0.1, cache_dir=tmp_path)
        assert len({a.x, b.x, c.x}) == 3

    def test_round_trip_matches_registry(self, tmp_path):
        from repro.datasets import make_case

        files = case_files("nips", 1, scale=0.05, cache_dir=tmp_path)
        x, y = files.load()
        case = make_case("nips", 1, scale=0.05)
        assert x.allclose(case.x)
        assert y.allclose(case.y)

    def test_clear_cache(self, tmp_path):
        case_files("uber", 2, scale=0.05, cache_dir=tmp_path)
        case_files("uber", 1, scale=0.05, cache_dir=tmp_path)
        removed = clear_cache(tmp_path)
        assert removed == 4  # two cases x two tensors
        assert clear_cache(tmp_path) == 0

    def test_clear_missing_dir(self, tmp_path):
        assert clear_cache(tmp_path / "nope") == 0

    def test_cli_integration(self, tmp_path, capsys):
        """Cached files drive the ttt CLI end to end."""
        from repro.ttt import main

        files = case_files("uber", 2, scale=0.05, cache_dir=tmp_path)
        code = main([
            "-X", str(files.x), "-Y", str(files.y),
            "-m", "2",
            "-x", *[str(m) for m in files.cx],
            "-y", *[str(m) for m in files.cy],
        ])
        assert code == 0
        assert "total:" in capsys.readouterr().out
