"""Tests for the Table-3 synthetic dataset registry."""

import numpy as np
import pytest

from repro.core import ContractionPlan, contract
from repro.datasets import (
    FIGURE4_DATASETS,
    FIGURE7_DATASETS,
    SPECS,
    dataset_names,
    make_case,
)
from repro.errors import ShapeError
from repro.tensor import linearize


class TestSpecs:
    def test_all_paper_tensors_present(self):
        assert set(dataset_names()) == {
            "nell2", "nips", "uber", "chicago", "uracil",
            "flickr", "delicious", "vast",
        }

    def test_orders_match_paper(self):
        assert SPECS["nell2"].paper_order == 3
        assert SPECS["vast"].paper_order == 5
        for name in ("nips", "uber", "chicago", "uracil", "flickr",
                     "delicious"):
            assert SPECS[name].paper_order == 4

    def test_scaled_dims_keep_order(self):
        for spec in SPECS.values():
            assert len(spec.dims) == spec.paper_order

    def test_figure_lists_valid(self):
        for name in FIGURE4_DATASETS + FIGURE7_DATASETS:
            assert name in SPECS


class TestMakeCase:
    def test_deterministic(self):
        a = make_case("nips", 2, scale=0.2, seed=5)
        b = make_case("nips", 2, scale=0.2, seed=5)
        assert a.x.allclose(b.x)
        assert a.y.allclose(b.y)

    def test_seed_changes_data(self):
        a = make_case("nips", 2, scale=0.2, seed=5)
        b = make_case("nips", 2, scale=0.2, seed=6)
        assert not a.x.allclose(b.x)

    def test_contract_modes_valid(self):
        for name in dataset_names():
            order = len(SPECS[name].dims)
            for n in range(1, order):
                case = make_case(name, n, scale=0.05)
                plan = ContractionPlan.create(
                    case.x, case.y, case.cx, case.cy
                )
                assert plan.num_contract == n

    def test_y_larger_than_x(self):
        case = make_case("chicago", 2, scale=0.2)
        assert case.y.nnz > case.x.nnz

    def test_high_hit_rate(self):
        case = make_case("uber", 2, scale=0.2)
        plan = ContractionPlan.create(case.x, case.y, case.cx, case.cy)
        xkeys = linearize(
            case.x.indices[:, plan.cx], plan.contract_dims
        )
        ykeys = set(
            int(k)
            for k in linearize(
                case.y.indices[:, plan.cy], plan.contract_dims
            )
        )
        hits = sum(1 for k in xkeys if int(k) in ykeys)
        assert hits / len(xkeys) > 0.6

    def test_scale_shrinks(self):
        big = make_case("vast", 1, scale=0.5)
        small = make_case("vast", 1, scale=0.1)
        assert small.x.nnz < big.x.nnz
        assert small.y.nnz < big.y.nnz

    def test_runnable_end_to_end(self):
        case = make_case("nips", 1, scale=0.05)
        res = contract(
            case.x, case.y, case.cx, case.cy,
            method="vectorized",
        )
        assert res.nnz > 0

    def test_label(self):
        assert make_case("chicago", 3, scale=0.05).label == (
            "Chicago 3-Mode"
        )

    def test_bad_dataset(self):
        with pytest.raises(ShapeError):
            make_case("unknown", 1)

    def test_bad_modes(self):
        with pytest.raises(ShapeError):
            make_case("nips", 0)
        with pytest.raises(ShapeError):
            make_case("nips", 4)

    def test_bad_scale(self):
        with pytest.raises(ShapeError):
            make_case("nips", 1, scale=0)

    def test_x_fiber_structure(self):
        case = make_case("chicago", 2, scale=0.3)
        nfx = case.x.order - 2
        lead = case.x.indices[:, :nfx]
        fibers = {tuple(int(v) for v in row) for row in lead}
        # The generator targets spec.x_fibers (scaled); sanity range.
        assert 8 <= len(fibers) <= case.x.nnz


class TestMakeLargeTensor:
    def test_deterministic_and_sorted_unique(self):
        import numpy as np

        from repro.datasets import make_large_tensor
        from repro.tensor.linearize import linearize

        t1 = make_large_tensor((64, 80, 100), 20_000, seed=3)
        t2 = make_large_tensor((64, 80, 100), 20_000, seed=3)
        assert t1.nnz == 20_000
        np.testing.assert_array_equal(t1.indices, t2.indices)
        np.testing.assert_array_equal(t1.values, t2.values)
        ln = linearize(t1.indices, t1.shape)
        assert np.all(np.diff(ln) > 0), "must be sorted and duplicate-free"

    def test_chunk_size_invariant(self):
        import numpy as np

        from repro.datasets import make_large_tensor

        a = make_large_tensor((64, 80, 100), 20_000, seed=3)
        b = make_large_tensor(
            (64, 80, 100), 20_000, seed=3, chunk_nnz=777
        )
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)

    def test_shared_pool_produces_contraction_hits(self):
        import numpy as np

        from repro.core import contract
        from repro.datasets import make_large_tensor
        from repro.tensor.linearize import linearize

        G = 200
        x = make_large_tensor(
            (50_000, 16, 20), 8_000, seed=1,
            pool_modes=2, pool_at="trail", pool_size=G, pool_seed=7,
        )
        y = make_large_tensor(
            (16, 20, 60_000), 12_000, seed=2,
            pool_modes=2, pool_at="lead", pool_size=G, pool_seed=7,
        )
        lny = linearize(y.indices, y.shape)
        assert np.all(np.diff(lny) > 0), "pooled-lead must re-sort"
        res = contract(x, y, (1, 2), (0, 1))
        # shared contract-key pool -> X probes land on real Y fibers
        assert res.tensor.nnz > 10 * x.nnz

    def test_extent_capacity_enforced(self):
        import pytest as _pytest

        from repro.datasets import make_large_tensor
        from repro.errors import ShapeError

        with _pytest.raises(ShapeError):
            make_large_tensor((10, 10), 1_000)
        with _pytest.raises(ShapeError):
            make_large_tensor((10, 10), 0)
        with _pytest.raises(ShapeError):
            make_large_tensor((10, 10), 10, pool_modes=2)
        with _pytest.raises(ShapeError):
            make_large_tensor((10, 10), 10, pool_at="middle")
