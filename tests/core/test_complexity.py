"""Complexity tests — Eqs. (3) and (4) via operation counters.

The engines count their search probes and accumulator probes; these tests
check the counts scale like the paper's complexity terms:

* SpTC-SPA index search: O(nnz_X x nnz_Y) comparisons;
* Sparta index search: O(nnz_X) expected hash probes;
* Sparta accumulation work: O(nnz_X x nnz_Favg) products.
"""

import pytest

from repro.core import contract
from repro.tensor import random_tensor_fibered


def _pair(nnz_x, nnz_y, seed, fibers_y=None):
    x = random_tensor_fibered(
        (20, 20, 40, 40), nnz_x, 2, 40, seed=seed
    )
    y = random_tensor_fibered(
        (40, 40, 30, 30), nnz_y, 2, fibers_y or max(nnz_y // 3, 8),
        seed=seed + 1,
    )
    return x, y


class TestSPAComplexity:
    def test_search_probes_product_scaling(self):
        x, y = _pair(1000, 2000, seed=50)
        res = contract(x, y, (2, 3), (0, 1), method="spa")
        assert (
            res.profile.counters["search_probes"]
            == x.nnz * y.nnz
        )

    def test_search_probes_double_with_y(self):
        x, y1 = _pair(800, 1000, seed=51)
        _, y2 = _pair(800, 2000, seed=51)
        p1 = contract(x, y1, (2, 3), (0, 1), method="spa").profile
        p2 = contract(x, y2, (2, 3), (0, 1), method="spa").profile
        ratio = (
            p2.counters["search_probes"] / p1.counters["search_probes"]
        )
        assert ratio == pytest.approx(y2.nnz / y1.nnz, rel=0.01)

    def test_spa_accum_probes_superlinear(self):
        x, y = _pair(1500, 3000, seed=52)
        res = contract(x, y, (2, 3), (0, 1), method="spa")
        products = res.profile.counters["products"]
        # Linear-search accumulation does far more comparisons than one
        # per product.
        assert res.profile.counters["accum_probes"] > 2 * products


class TestSpartaComplexity:
    def test_search_probes_linear_in_x(self):
        x, y = _pair(1000, 2000, seed=53)
        res = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )
        assert res.profile.counters["search_probes"] == x.nnz

    def test_hash_probes_near_constant_per_lookup(self):
        x, y = _pair(1000, 4000, seed=54)
        res = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )
        hash_probes = res.profile.counters["hash_probes"]
        # Expected chains ~1 at default load factor: a small constant
        # number of key comparisons per lookup.
        assert hash_probes < 4 * x.nnz

    def test_products_match_eq4(self):
        # products == sum over matched X nz of its Y sub-tensor size.
        x, y = _pair(500, 1500, seed=55)
        spa = contract(x, y, (2, 3), (0, 1), method="spa")
        sparta = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )
        vec = contract(x, y, (2, 3), (0, 1), method="vectorized")
        assert (
            spa.profile.counters["products"]
            == sparta.profile.counters["products"]
            == vec.profile.counters["products"]
        )

    def test_asymptotic_advantage(self):
        # The probe-count gap grows linearly with nnz_Y (Eq. 3 vs Eq. 4).
        x, y_small = _pair(600, 1000, seed=56)
        _, y_big = _pair(600, 4000, seed=56)
        gap = {}
        for label, y in (("small", y_small), ("big", y_big)):
            spa = contract(x, y, (2, 3), (0, 1), method="spa").profile
            sp = contract(
                x, y, (2, 3), (0, 1),
                method="sparta", swap_larger_to_y=False,
            ).profile
            gap[label] = (
                spa.counters["search_probes"]
                / max(sp.counters["search_probes"], 1)
            )
        assert gap["big"] > 3 * gap["small"]


class TestInputProcessingCost:
    def test_hty_build_cheaper_than_sort_traffic(self):
        # COO->HtY is O(nnz_Y); SPA's Y path sorts in O(nnz log nnz).
        # Both record their stage-1 traffic; the HtY build reads Y once.
        from repro.core.profile import AccessKind, DataObject
        from repro.core.stages import Stage

        x, y = _pair(500, 4000, seed=57)
        sp = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        ).profile
        y_read = sp.traffic_bytes(
            obj=DataObject.Y,
            stage=Stage.INPUT_PROCESSING,
            kind=AccessKind.READ,
        )
        rowb = 8 * y.order + 8
        assert y_read == y.nnz * rowb  # exactly one pass
