"""Tests for contraction sequences."""

import pytest

from repro import ContractionSequence, contract
from repro.errors import ContractionError
from repro.tensor import random_tensor


@pytest.fixture
def chain():
    t0 = random_tensor((5, 6, 4), 25, seed=131)
    t1 = random_tensor((6, 4, 7), 25, seed=132)  # contracts t0's (1, 2)
    t2 = random_tensor((7, 3), 10, seed=133)  # contracts result's last
    return t0, t1, t2


class TestSequence:
    def test_two_step_chain(self, chain):
        t0, t1, t2 = chain
        seq = (
            ContractionSequence(t0)
            .then(t1, (1, 2), (0, 1))   # -> (5, 7)
            .then(t2, (1,), (0,))       # -> (5, 3)
        )
        assert len(seq) == 2
        result = seq.run(method="vectorized")
        step1 = contract(t0, t1, (1, 2), (0, 1), method="dense")
        step2 = contract(step1.tensor, t2, (1,), (0,), method="dense")
        assert result.tensor.allclose(step2.tensor)
        assert result.tensor.shape == (5, 3)

    def test_per_step_results_kept(self, chain):
        t0, t1, t2 = chain
        result = (
            ContractionSequence(t0)
            .then(t1, (1, 2), (0, 1))
            .then(t2, (1,), (0,))
            .run(method="sparta")
        )
        assert len(result.steps) == 2
        assert result.steps[0].tensor.shape == (5, 7)
        assert result.total_seconds > 0

    def test_combined_profile(self, chain):
        t0, t1, t2 = chain
        result = (
            ContractionSequence(t0)
            .then(t1, (1, 2), (0, 1))
            .then(t2, (1,), (0,))
            .run(method="sparta", swap_larger_to_y=False)
        )
        merged = result.combined_profile()
        assert merged.total_seconds == pytest.approx(
            result.total_seconds
        )
        assert merged.counters["products"] == sum(
            s.profile.counters["products"] for s in result.steps
        )

    def test_intermediate_outputs_sorted(self, chain):
        """The §3.1 motivation: sorted outputs feed the next SpTC."""
        t0, t1, t2 = chain
        result = (
            ContractionSequence(t0)
            .then(t1, (1, 2), (0, 1))
            .then(t2, (1,), (0,))
            .run(method="sparta")
        )
        for step in result.steps:
            assert step.tensor.is_sorted()

    def test_empty_sequence_rejected(self, chain):
        t0, _, _ = chain
        with pytest.raises(ContractionError):
            ContractionSequence(t0).run()

    def test_step_error_reports_position(self, chain):
        t0, t1, _ = chain
        bad = random_tensor((99, 2), 5, seed=134)
        seq = (
            ContractionSequence(t0)
            .then(t1, (1, 2), (0, 1))
            .then(bad, (1,), (0,))  # extent mismatch at step 1
        )
        with pytest.raises(ContractionError, match="step 1"):
            seq.run()
