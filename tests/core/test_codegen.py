"""Kernel-specialization subsystem: signatures, templates, cache, planner.

The differential suite pins the end-to-end bit-identity of the
generated kernels; this module tests the machinery itself — signature
derivation, template rendering under every branch, cache keying and
eviction, the ``REPRO_NO_CODEGEN`` kill-switch, the planner-lite
routing guard and the process-worker warm-up counters.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.codegen import (
    KILL_SWITCH_ENV,
    KernelCache,
    KernelSignature,
    codegen_enabled,
    compile_kernel,
    default_kernel_cache,
    render_delinearizer,
    render_fused_kernel,
)
from repro.core.dispatch import contract
from repro.core.profile import RunProfile
from repro.errors import ContractionError
from repro.parallel import parallel_sparta
from repro.tensor import random_tensor
from repro.tensor.linearize import delinearize

INDEX = np.int64


def make_sig(free_dims=(4, 8), contract_dims=(3,), nfx=2):
    return KernelSignature(
        x_order=nfx + len(contract_dims),
        y_order=len(contract_dims) + len(free_dims),
        contract_dims=tuple(contract_dims),
        free_dims=tuple(free_dims),
        accumulator="hash",
        dtype="float64",
    )


def fake_operands(free_dims, contract_dims, nfx=2):
    px = SimpleNamespace(
        fx_rows=np.zeros((5, nfx), dtype=INDEX),
        values=np.zeros(5, dtype=np.float64),
    )
    source = SimpleNamespace(
        free_dims=tuple(free_dims), contract_dims=tuple(contract_dims)
    )
    return px, source


def reference_reduce(vals, fy, seg):
    """Generic stable lexsort + left-to-right bincount reduction."""
    perm = np.lexsort((fy, seg))
    seg_s, fy_s, vals_s = seg[perm], fy[perm], vals[perm]
    n = vals.shape[0]
    mask = np.empty(n, dtype=bool)
    mask[0] = True
    mask[1:] = (seg_s[1:] != seg_s[:-1]) | (fy_s[1:] != fy_s[:-1])
    boundary = np.flatnonzero(mask)
    sums = np.bincount(
        np.cumsum(mask) - 1, weights=vals_s,
        minlength=boundary.shape[0],
    )
    return seg_s[boundary], fy_s[boundary], sums


def chunk_case(n, fy_space, span, seed):
    rng = np.random.default_rng(seed)
    vals = rng.standard_normal(n)
    fy = rng.integers(0, fy_space, size=n).astype(INDEX)
    seg = np.sort(rng.integers(10, 10 + span, size=n)).astype(INDEX)
    return vals, fy, seg


class TestSignature:
    def test_from_operands_derives_shape_class(self):
        px, source = fake_operands((4, 8), (3, 2), nfx=2)
        sig = KernelSignature.from_operands(px, source, "hash")
        assert sig == make_sig((4, 8), (3, 2), nfx=2)
        assert sig.fy_space == 32
        assert sig.nfx == 2

    def test_from_operands_without_dims_returns_none(self):
        px, source = fake_operands((), (3,))
        assert KernelSignature.from_operands(px, source, "hash") is None
        px, source = fake_operands((4,), ())
        assert KernelSignature.from_operands(px, source, "hash") is None

    def test_signature_is_hashable_cache_key(self):
        assert make_sig() == make_sig()
        assert hash(make_sig()) == hash(make_sig())
        assert make_sig((4, 8)) != make_sig((8, 4))


class TestTemplates:
    @pytest.mark.parametrize("fy_space,span", [
        (32, 4),       # power-of-two free space → shift/mask packing
        (24, 4),       # non-power-of-two → multiply/divide packing
        (7, 1),        # single sub-tensor
    ])
    def test_fused_kernel_branches_match_reference(self, fy_space, span):
        free = (fy_space,)
        kern = compile_kernel(
            render_fused_kernel(make_sig(free)), "fused_chunk"
        )
        vals, fy, seg = chunk_case(600, fy_space, span, seed=9)
        ref = reference_reduce(vals, fy, seg)
        # dense (threshold 0 forces it), packed, lexsort (cap 0 and an
        # oversized threshold knock out the first two branches... the
        # lexsort branch only triggers on key overflow, so call the
        # generic reference directly for it) — plus the auto choice.
        for kwargs, expect in [
            (dict(dense_threshold=0.0, workspace_cap=1 << 22), "dense"),
            (dict(dense_threshold=2.0, workspace_cap=0), "packed"),
            (dict(dense_threshold=0.5, workspace_cap=1 << 22), None),
        ]:
            o_seg, o_fy, o_vals, strategy = kern(vals, fy, seg, **kwargs)
            if expect is not None:
                assert strategy == expect
            np.testing.assert_array_equal(o_seg, ref[0])
            np.testing.assert_array_equal(o_fy, ref[1])
            np.testing.assert_array_equal(
                o_vals.view(np.uint64), ref[2].view(np.uint64),
                err_msg=f"{strategy}: value bytes differ",
            )

    def test_lexsort_fallback_on_key_overflow(self):
        # A chunk whose packed key space cannot fit next to the index
        # bits must fall back to the generic stable sort.
        kern = compile_kernel(
            render_fused_kernel(make_sig((1 << 55,))), "fused_chunk"
        )
        vals, fy, seg = chunk_case(5000, 1 << 20, 3, seed=3)
        ref = reference_reduce(vals, fy, seg)
        o_seg, o_fy, o_vals, strategy = kern(
            vals, fy, seg, 0.5, 1 << 22
        )
        assert strategy == "lexsort"
        np.testing.assert_array_equal(o_seg, ref[0])
        np.testing.assert_array_equal(
            o_vals.view(np.uint64), ref[2].view(np.uint64)
        )

    def test_dense_negative_zero_matches_bincount(self):
        kern = compile_kernel(
            render_fused_kernel(make_sig((8,))), "fused_chunk"
        )
        vals = np.array([-0.0, -0.0, 1.5, -1.5])
        fy = np.array([2, 3, 5, 5], dtype=INDEX)
        seg = np.array([0, 0, 0, 0], dtype=INDEX)
        ref = reference_reduce(vals, fy, seg)
        for kwargs in (dict(dense_threshold=0.0, workspace_cap=1 << 22),
                       dict(dense_threshold=2.0, workspace_cap=0)):
            out = kern(vals, fy, seg, **kwargs)
            np.testing.assert_array_equal(
                out[2].view(np.uint64), ref[2].view(np.uint64)
            )

    @pytest.mark.parametrize("dims", [
        (5,), (4,), (4, 8), (3, 5), (2, 3, 4), (8, 7, 16), (1, 1, 6),
    ])
    def test_delinearizer_matches_generic(self, dims):
        rng = np.random.default_rng(0)
        space = int(np.prod(dims))
        keys = rng.integers(0, space, size=200).astype(INDEX)
        delin = compile_kernel(
            render_delinearizer(tuple(dims)), "delinearize_fy"
        )
        out = np.empty((keys.shape[0], len(dims)), dtype=INDEX)
        delin(keys, out)
        np.testing.assert_array_equal(out, delinearize(keys, dims))

    def test_delinearizer_rejects_empty(self):
        with pytest.raises(ValueError):
            render_delinearizer(())

    def test_source_attached_and_identifiable(self):
        sig = make_sig((4, 8))
        kern = compile_kernel(
            render_fused_kernel(sig), "fused_chunk", label="t"
        )
        assert "FY_SPACE = 32" in kern.__source__
        assert kern.__code__.co_filename == "<repro-codegen:t>"


class TestKernelCache:
    def test_keying_and_counters(self):
        cache = KernelCache(maxsize=4)
        profile = RunProfile("t")
        k1 = cache.get_fused_kernel(make_sig((4, 8)), profile)
        k2 = cache.get_fused_kernel(make_sig((4, 8)), profile)
        k3 = cache.get_fused_kernel(make_sig((8, 4)), profile)
        assert k1 is k2
        assert k1 is not k3
        assert profile.counters["kernel_cache_hits"] == 1
        assert profile.counters["kernel_cache_misses"] == 2
        assert profile.counters["kernel_compiles"] == 2
        # delinearizers share the cache under a distinct key prefix
        d1 = cache.get_delinearizer((4, 8), profile)
        d2 = cache.get_delinearizer((4, 8), profile)
        assert d1 is d2
        assert len(cache) == 3

    def test_eviction_recompiles_equal_source(self):
        cache = KernelCache(maxsize=2)
        sigs = [make_sig((d,)) for d in (5, 6, 7)]
        first = cache.get_fused_kernel(sigs[0])
        for s in sigs[1:]:
            cache.get_fused_kernel(s)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        again = cache.get_fused_kernel(sigs[0])  # evicted → recompile
        assert again is not first
        assert again.__source__ == first.__source__

    def test_default_cache_is_process_wide(self):
        assert default_kernel_cache() is default_kernel_cache()


class TestKillSwitch:
    def test_codegen_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv(KILL_SWITCH_ENV, raising=False)
        assert codegen_enabled()
        for val in ("1", "true", "yes"):
            monkeypatch.setenv(KILL_SWITCH_ENV, val)
            assert not codegen_enabled()
        monkeypatch.setenv(KILL_SWITCH_ENV, "0")
        assert codegen_enabled()

    def test_kill_switch_overrides_explicit_opt_in(self, monkeypatch):
        monkeypatch.setenv(KILL_SWITCH_ENV, "1")
        x = random_tensor((6, 5, 4), 25, seed=1)
        y = random_tensor((4, 7), 20, seed=2)
        res = contract(x, y, (2,), (0,), method="sparta", codegen=True)
        assert not any(
            k.startswith("codegen_") or k.startswith("kernel_")
            for k in res.profile.counters
        )


class TestPlannerGuard:
    def small_case(self):
        x = random_tensor((8, 7, 6), 60, seed=5)
        y = random_tensor((6, 9), 40, seed=6)
        return x, y, (2,), (0,)

    def test_small_contraction_routes_serial(self):
        x, y, cx, cy = self.small_case()
        par = parallel_sparta(x, y, cx, cy, threads=4, planner="auto")
        profile = par.result.profile
        assert profile.flags["planner"] == "serial_small"
        assert profile.counters["planner_est_products"] >= 0
        assert par.backend == "serial"
        assert par.threads == 1
        # synthetic per-worker stats row stays consumable
        (row,) = par.thread_stats
        assert row.worker == 0
        assert row.nnz_x == x.nnz
        assert row.products == profile.counters["products"]
        assert row.output_nnz == par.result.tensor.nnz
        # engine label is unchanged for downstream consumers
        assert profile.engine == "sparta_parallel"

    def test_planner_off_keeps_parallel_machinery(self):
        x, y, cx, cy = self.small_case()
        par = parallel_sparta(x, y, cx, cy, threads=4, planner="off")
        assert par.backend == "thread"
        # The flag is always present now; "off" records the disabled
        # planner explicitly.
        assert par.result.profile.flags["planner"] == "off"

    def test_routed_run_bit_identical_to_parallel(self):
        x, y, cx, cy = self.small_case()
        routed = parallel_sparta(x, y, cx, cy, threads=4, planner="auto")
        full = parallel_sparta(x, y, cx, cy, threads=4, planner="off")
        a, b = routed.result.tensor.sort(), full.result.tensor.sort()
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(
            a.values.view(np.uint64), b.values.view(np.uint64)
        )

    def test_env_default_and_validation(self, monkeypatch):
        x, y, cx, cy = self.small_case()
        monkeypatch.setenv("REPRO_PLANNER", "auto")
        par = parallel_sparta(x, y, cx, cy, threads=4)
        assert par.result.profile.flags["planner"] == "serial_small"
        with pytest.raises(ContractionError):
            parallel_sparta(x, y, cx, cy, planner="bogus")

    def test_fault_plan_disables_routing(self):
        from repro.faults import FaultPlan

        x, y, cx, cy = self.small_case()
        plan = FaultPlan.from_seed(1, workers=2)
        par = parallel_sparta(
            x, y, cx, cy, threads=2, planner="auto", fault_plan=plan
        )
        assert par.backend == "thread"
        # A fault plan disables routing and the flag records it as off.
        assert par.result.profile.flags["planner"] == "off"

    def test_large_contraction_stays_parallel(self):
        x = random_tensor((40, 30, 12, 10), 18_000, seed=7)
        y = random_tensor((12, 10, 25, 20), 16_000, seed=8)
        par = parallel_sparta(
            x, y, (2, 3), (0, 1), threads=2, planner="auto"
        )
        assert par.backend == "thread"
        assert par.result.profile.flags["planner"] == "auto:thread"
        assert par.result.profile.counters["planner_est_products"] > 0


class TestWorkerWarmup:
    def test_process_workers_report_kernel_counters(self):
        # Big enough that every worker range compiles/hits at least
        # once; worker counters ship back over the ordinary profile
        # counter pipes, so warm-up is observable in the merged profile.
        x = random_tensor((20, 18, 10, 8), 4_000, seed=11)
        y = random_tensor((10, 8, 15, 12), 4_500, seed=12)
        par = parallel_sparta(
            x, y, (2, 3), (0, 1), threads=2, backend="process",
            planner="off",
        )
        c = par.result.profile.counters
        chunks = c.get("codegen_dense_chunks", 0) + c.get(
            "codegen_packed_chunks", 0
        ) + c.get("codegen_lexsort_chunks", 0)
        assert chunks > 0
        lookups = c.get("kernel_cache_hits", 0) + c.get(
            "kernel_cache_misses", 0
        )
        assert lookups >= chunks
        # misses are bounded by compiles; at most one compile per
        # process per signature (plus the parent's delinearizer)
        assert c.get("kernel_compiles", 0) == c.get(
            "kernel_cache_misses", 0
        )
