"""Edge cases and failure injection across the engines."""

import numpy as np
import pytest

from repro.core import contract
from repro.errors import (
    ContractionError,
    LinearizationOverflowError,
    ShapeError,
)
from repro.tensor import SparseTensor, random_tensor

ENGINES = ("spa", "coo_hta", "sparta", "vectorized")


class TestExtremeValues:
    def test_inf_propagates(self):
        x = SparseTensor([[0, 0]], [np.inf], (1, 2))
        y = SparseTensor([[0, 0]], [2.0], (2, 1))
        for method in ENGINES:
            res = contract(x, y, (1,), (0,), method=method)
            assert np.isinf(res.tensor.values).any(), method

    def test_nan_propagates(self):
        x = SparseTensor([[0, 0]], [np.nan], (1, 2))
        y = SparseTensor([[0, 0]], [2.0], (2, 1))
        for method in ENGINES:
            res = contract(x, y, (1,), (0,), method=method)
            assert np.isnan(res.tensor.values).any(), method

    def test_tiny_and_huge_magnitudes(self):
        x = SparseTensor([[0, 0], [0, 1]], [1e-300, 1e300], (1, 2))
        y = SparseTensor([[0, 0], [1, 0]], [1e300, 1e-300], (2, 1))
        ref = contract(x, y, (1,), (0,), method="dense")
        for method in ENGINES:
            res = contract(x, y, (1,), (0,), method=method)
            assert res.tensor.allclose(ref.tensor), method

    def test_negative_values(self):
        x = random_tensor((4, 5), 10, seed=211)
        x = SparseTensor(x.indices, -np.abs(x.values), x.shape)
        y = random_tensor((5, 3), 10, seed=212)
        ref = contract(x, y, (1,), (0,), method="dense")
        for method in ENGINES:
            assert contract(
                x, y, (1,), (0,), method=method
            ).tensor.allclose(ref.tensor), method


class TestDegenerateShapes:
    def test_extent_one_modes(self):
        x = random_tensor((1, 4, 1), 3, seed=213)
        y = random_tensor((1, 1, 5), 4, seed=214)
        ref = contract(x, y, (2,), (0,), method="dense")
        for method in ENGINES:
            res = contract(x, y, (2,), (0,), method=method)
            assert res.tensor.allclose(ref.tensor), method

    def test_single_nonzero_each(self):
        x = SparseTensor([[2, 3]], [1.5], (4, 5))
        y = SparseTensor([[3, 1]], [-2.0], (5, 3))
        for method in ENGINES:
            res = contract(x, y, (1,), (0,), method=method)
            assert res.nnz == 1
            assert res.tensor.values[0] == pytest.approx(-3.0)

    def test_order_2_times_order_5(self):
        x = random_tensor((6, 4), 12, seed=215)
        y = random_tensor((4, 3, 3, 2, 2), 30, seed=216)
        ref = contract(x, y, (1,), (0,), method="dense")
        for method in ENGINES:
            assert contract(
                x, y, (1,), (0,), method=method
            ).tensor.allclose(ref.tensor), method

    def test_dense_inputs(self):
        # Fully dense sparse tensors (density 1).
        x = SparseTensor.from_dense(
            np.random.default_rng(0).standard_normal((3, 4))
        )
        y = SparseTensor.from_dense(
            np.random.default_rng(1).standard_normal((4, 5))
        )
        ref = contract(x, y, (1,), (0,), method="dense")
        for method in ENGINES:
            assert contract(
                x, y, (1,), (0,), method=method
            ).tensor.allclose(ref.tensor), method


class TestOverflowSafety:
    def test_ln_overflow_raises_cleanly(self):
        # Contract dims whose product exceeds int64 must fail loudly,
        # not silently corrupt keys.
        big = 2**33
        x = SparseTensor([[0, 0, 0]], [1.0], (2, big, big))
        y = SparseTensor([[0, 0, 0]], [1.0], (big, big, 2))
        with pytest.raises(LinearizationOverflowError):
            contract(
                x, y, (1, 2), (0, 1),
                method="sparta", swap_larger_to_y=False,
            )

    def test_large_but_safe_dims(self):
        dim = 2**20
        x = SparseTensor([[0, 5], [1, dim - 1]], [1.0, 2.0], (2, dim))
        y = SparseTensor([[5, 0], [dim - 1, 1]], [3.0, 4.0], (dim, 2))
        ref = contract(x, y, (1,), (0,), method="dense") if dim <= 64 else None
        for method in ENGINES:
            res = contract(x, y, (1,), (0,), method=method)
            assert res.nnz == 2
            dense = res.tensor.to_dense()
            assert dense[0, 0] == pytest.approx(3.0)
            assert dense[1, 1] == pytest.approx(8.0)


class TestErrorMessages:
    def test_helpful_mode_errors(self):
        x = random_tensor((3, 4), 5, seed=217)
        y = random_tensor((5, 3), 5, seed=218)
        with pytest.raises(ContractionError, match="extents"):
            contract(x, y, (1,), (0,))
        with pytest.raises(ShapeError, match="out of range"):
            contract(x, y, (9,), (0,))
