"""Tests for contraction planning and mode validation."""

import pytest

from repro.core import ContractionPlan
from repro.errors import ContractionError, ShapeError
from repro.tensor import random_tensor


@pytest.fixture
def xy():
    return (
        random_tensor((6, 5, 4, 3), 20, seed=1),
        random_tensor((4, 3, 7, 8), 20, seed=2),
    )


class TestCreate:
    def test_paper_example(self, xy):
        # Z = X x_{3,4}^{1,2} Y (0-based: cx=(2,3), cy=(0,1)).
        x, y = xy
        plan = ContractionPlan.create(x, y, (2, 3), (0, 1))
        assert plan.fx == (0, 1)
        assert plan.fy == (2, 3)
        assert plan.out_shape == (6, 5, 7, 8)
        assert plan.out_order == 4
        assert plan.num_contract == 2
        assert plan.contract_dims == (4, 3)

    def test_out_order_formula(self, xy):
        # N_Z = (N_X - |C_X|) + (N_Y - |C_Y|).
        x, y = xy
        plan = ContractionPlan.create(x, y, (2, 3), (0, 1))
        assert plan.out_order == (x.order - 2) + (y.order - 2)

    def test_mismatched_extent_rejected(self, xy):
        x, y = xy
        with pytest.raises(ContractionError):
            ContractionPlan.create(x, y, (0, 3), (0, 1))

    def test_mismatched_counts_rejected(self, xy):
        x, y = xy
        with pytest.raises(ContractionError):
            ContractionPlan.create(x, y, (2, 3), (0,))

    def test_no_contract_modes_rejected(self, xy):
        x, y = xy
        with pytest.raises(ContractionError):
            ContractionPlan.create(x, y, (), ())

    def test_duplicate_modes_rejected(self, xy):
        x, y = xy
        with pytest.raises(ShapeError):
            ContractionPlan.create(x, y, (2, 2), (0, 1))

    def test_out_of_range_modes_rejected(self, xy):
        x, y = xy
        with pytest.raises(ShapeError):
            ContractionPlan.create(x, y, (2, 9), (0, 1))

    def test_fully_contracted_x_rejected(self):
        x = random_tensor((3, 4), 5, seed=3)
        y = random_tensor((3, 4, 5), 5, seed=4)
        with pytest.raises(ContractionError):
            ContractionPlan.create(x, y, (0, 1), (0, 1))

    def test_fully_contracted_y_rejected(self):
        x = random_tensor((3, 4, 5), 5, seed=3)
        y = random_tensor((3, 4), 5, seed=4)
        with pytest.raises(ContractionError):
            ContractionPlan.create(x, y, (0, 1), (0, 1))

    def test_unordered_pairing(self):
        # Contract modes pair by list position, not by value.
        x = random_tensor((5, 3, 4), 10, seed=5)
        y = random_tensor((4, 3, 6), 10, seed=6)
        plan = ContractionPlan.create(x, y, (2, 1), (0, 1))
        assert plan.contract_dims == (4, 3)
        assert plan.out_shape == (5, 6)


class TestModeOrders:
    def test_correct_mode_orders(self, xy):
        x, y = xy
        plan = ContractionPlan.create(x, y, (2, 3), (0, 1))
        assert plan.x_mode_order() == (0, 1, 2, 3)
        assert plan.y_mode_order() == (0, 1, 2, 3)

    def test_permutation_needed_case(self):
        x = random_tensor((4, 6, 5), 10, seed=7)
        y = random_tensor((7, 4, 8), 10, seed=8)
        plan = ContractionPlan.create(x, y, (0,), (1,))
        assert plan.x_mode_order() == (1, 2, 0)
        assert plan.y_mode_order() == (1, 0, 2)

    def test_swapped_plan(self, xy):
        x, y = xy
        plan = ContractionPlan.create(x, y, (2, 3), (0, 1))
        sw = plan.swapped()
        assert sw.x_shape == plan.y_shape
        assert sw.cx == plan.cy
        assert sw.out_shape == (7, 8, 6, 5)

    def test_swap_output_permutation(self, xy):
        x, y = xy
        plan = ContractionPlan.create(x, y, (2, 3), (0, 1))
        perm = plan.swap_output_permutation()
        swapped_shape = plan.swapped().out_shape
        recovered = tuple(swapped_shape[m] for m in perm)
        assert recovered == plan.out_shape
