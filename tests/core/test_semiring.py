"""Tests for semiring contraction and output cutoff."""

import numpy as np
import pytest

from repro.core.semiring import (
    ARITHMETIC,
    BOOLEAN,
    MAX_PLUS,
    MIN_PLUS,
    SEMIRINGS,
    Semiring,
)
from repro.core.vectorized import vectorized_contract
from repro.tensor import SparseTensor, random_tensor


def _brute_force(a, b, add, mul, init):
    """Element-wise reference over an order-2 pair contraction."""
    out = {}
    for (i, k), va in zip(map(tuple, a.indices), a.values):
        for (k2, j), vb in zip(map(tuple, b.indices), b.values):
            if k == k2:
                key = (int(i), int(j))
                prod = mul(float(va), float(vb))
                out[key] = add(out.get(key, init), prod)
    return out


@pytest.fixture
def ab():
    return (
        random_tensor((8, 9), 30, seed=261),
        random_tensor((9, 7), 30, seed=262),
    )


class TestSemirings:
    def test_arithmetic_is_default(self, ab):
        a, b = ab
        default = vectorized_contract(a, b, (1,), (0,))
        explicit = vectorized_contract(
            a, b, (1,), (0,), semiring=ARITHMETIC
        )
        assert default.tensor.allclose(explicit.tensor)

    @pytest.mark.parametrize(
        "semiring,add,mul,init",
        [
            (MIN_PLUS, min, lambda x, y: x + y, np.inf),
            (MAX_PLUS, max, lambda x, y: x + y, -np.inf),
        ],
    )
    def test_tropical(self, ab, semiring, add, mul, init):
        a, b = ab
        res = vectorized_contract(a, b, (1,), (0,), semiring=semiring)
        expected = _brute_force(a, b, add, mul, init)
        got = {
            tuple(map(int, r)): float(v)
            for r, v in zip(res.tensor.indices, res.tensor.values)
        }
        assert got == pytest.approx(expected)

    def test_boolean_reachability(self):
        # 0/1 adjacency matrices: boolean semiring gives 2-hop paths.
        rng = np.random.default_rng(263)
        adj = (rng.random((10, 10)) < 0.2).astype(float)
        a = SparseTensor.from_dense(adj)
        res = vectorized_contract(a, a, (1,), (0,), semiring=BOOLEAN)
        dense = res.tensor.to_dense()
        reach2 = (adj @ adj) > 0
        assert np.array_equal(dense > 0, reach2)
        assert set(np.unique(dense)) <= {0.0, 1.0}

    def test_chunking_preserves_semiring(self, ab):
        a, b = ab
        one = vectorized_contract(
            a, b, (1,), (0,), semiring=MIN_PLUS
        )
        many = vectorized_contract(
            a, b, (1,), (0,), semiring=MIN_PLUS, chunk_pairs=3
        )
        assert one.tensor.allclose(many.tensor)

    def test_semiring_on_higher_order(self):
        x = random_tensor((4, 5, 6), 30, seed=264)
        y = random_tensor((6, 3), 10, seed=265)
        res = vectorized_contract(
            x, y, (2,), (0,), semiring=MAX_PLUS
        )
        assert res.tensor.shape == (4, 5, 3)
        assert res.nnz > 0

    def test_registry(self):
        assert set(SEMIRINGS) == {
            "arithmetic", "min_plus", "max_plus", "boolean"
        }

    def test_custom_semiring_validation(self):
        with pytest.raises(TypeError):
            Semiring(add=min, multiply=np.add)  # not a ufunc
        s = Semiring(np.minimum, np.maximum, "minimax")
        assert s.name == "minimax"


class TestOutputCutoff:
    def test_cutoff_prunes(self, ab):
        a, b = ab
        full = vectorized_contract(a, b, (1,), (0,))
        cut = vectorized_contract(a, b, (1,), (0,), output_cutoff=0.5)
        assert cut.nnz < full.nnz
        assert (np.abs(cut.tensor.values) > 0.5).all()

    def test_cutoff_matches_post_prune(self, ab):
        a, b = ab
        full = vectorized_contract(a, b, (1,), (0,))
        cut = vectorized_contract(a, b, (1,), (0,), output_cutoff=0.3)
        assert cut.tensor.allclose(full.tensor.prune(0.3))

    def test_zero_cutoff_is_noop(self, ab):
        a, b = ab
        assert vectorized_contract(
            a, b, (1,), (0,), output_cutoff=0.0
        ).tensor.allclose(vectorized_contract(a, b, (1,), (0,)).tensor)
