"""Tests for RunProfile serialization round trips."""

import json

import pytest

from repro.core import contract
from repro.core.profile import RunProfile
from repro.tensor import random_tensor


class TestSerialization:
    @pytest.fixture
    def profile(self):
        x = random_tensor((6, 5, 4), 30, seed=281)
        y = random_tensor((4, 7), 20, seed=282)
        return contract(
            x, y, (2,), (0,), method="sparta", swap_larger_to_y=False
        ).profile

    def test_round_trip(self, profile):
        back = RunProfile.from_dict(profile.to_dict())
        assert back.engine == profile.engine
        assert back.counters == profile.counters
        assert back.stage_seconds == profile.stage_seconds
        assert back.object_bytes == profile.object_bytes
        assert back.traffic == profile.traffic

    def test_json_serializable(self, profile):
        text = json.dumps(profile.to_dict())
        back = RunProfile.from_dict(json.loads(text))
        assert back.total_seconds == pytest.approx(
            profile.total_seconds
        )
        assert back.traffic_bytes() == profile.traffic_bytes()

    def test_empty_profile(self):
        p = RunProfile("empty")
        back = RunProfile.from_dict(p.to_dict())
        assert back.engine == "empty"
        assert back.traffic == []

    def test_simulator_accepts_deserialized(self, profile):
        from repro.memory import (
            HMSimulator,
            all_pmm_placement,
            dram,
            pmm,
        )
        from repro.memory.devices import HeterogeneousMemory

        back = RunProfile.from_dict(profile.to_dict())
        peak = max(back.peak_bytes(), 1)
        sim = HMSimulator(
            HeterogeneousMemory(dram=dram(peak), pmm=pmm(peak * 10))
        )
        a = sim.simulate(profile, all_pmm_placement()).total_seconds
        b = sim.simulate(back, all_pmm_placement()).total_seconds
        assert a == pytest.approx(b)
