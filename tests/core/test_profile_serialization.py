"""Tests for RunProfile serialization round trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import contract
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.stages import Stage
from repro.tensor import random_tensor


class TestSerialization:
    @pytest.fixture
    def profile(self):
        x = random_tensor((6, 5, 4), 30, seed=281)
        y = random_tensor((4, 7), 20, seed=282)
        return contract(
            x, y, (2,), (0,), method="sparta", swap_larger_to_y=False
        ).profile

    def test_round_trip(self, profile):
        back = RunProfile.from_dict(profile.to_dict())
        assert back.engine == profile.engine
        assert back.counters == profile.counters
        assert back.stage_seconds == profile.stage_seconds
        assert back.object_bytes == profile.object_bytes
        assert back.traffic == profile.traffic

    def test_json_serializable(self, profile):
        text = json.dumps(profile.to_dict())
        back = RunProfile.from_dict(json.loads(text))
        assert back.total_seconds == pytest.approx(
            profile.total_seconds
        )
        assert back.traffic_bytes() == profile.traffic_bytes()

    def test_empty_profile(self):
        p = RunProfile("empty")
        back = RunProfile.from_dict(p.to_dict())
        assert back.engine == "empty"
        assert back.traffic == []

    def test_simulator_accepts_deserialized(self, profile):
        from repro.memory import (
            HMSimulator,
            all_pmm_placement,
            dram,
            pmm,
        )
        from repro.memory.devices import HeterogeneousMemory

        back = RunProfile.from_dict(profile.to_dict())
        peak = max(back.peak_bytes(), 1)
        sim = HMSimulator(
            HeterogeneousMemory(dram=dram(peak), pmm=pmm(peak * 10))
        )
        a = sim.simulate(profile, all_pmm_placement()).total_seconds
        b = sim.simulate(back, all_pmm_placement()).total_seconds
        assert a == pytest.approx(b)

    def test_to_json_from_json_inverse(self, profile):
        profile.set_flag("degraded", "serial")
        profile.bump("ft_worker_failures", 2)
        back = RunProfile.from_json(profile.to_json())
        assert back.to_dict() == profile.to_dict()
        assert back.flags == profile.flags
        assert back.counters["ft_worker_failures"] == 2


# -- hypothesis: arbitrary profiles survive the JSON round trip --------

_counter_names = st.one_of(
    st.sampled_from(
        ["hash_probes", "search_probes", "products",
         "ft_worker_failures", "ft_respawns", "ft_corruptions_detected",
         "load_imbalance_x1000"]
    ),
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=16
    ),
)

_traffic_records = st.tuples(
    st.sampled_from(list(DataObject)),
    st.sampled_from(list(Stage)),
    st.sampled_from(list(AccessKind)),
    st.sampled_from(list(AccessPattern)),
    st.integers(min_value=1, max_value=2**48),
)


@st.composite
def profiles(draw):
    p = RunProfile(draw(st.sampled_from(["sparta", "spa", "parallel"])))
    for stage in draw(st.lists(st.sampled_from(list(Stage)), max_size=5)):
        p.add_time(
            stage,
            draw(st.floats(min_value=0.0, max_value=1e6,
                           allow_nan=False, allow_infinity=False)),
        )
    for name in draw(st.lists(_counter_names, max_size=8)):
        p.bump(name, draw(st.integers(min_value=0, max_value=2**50)))
    for name in draw(
        st.lists(st.sampled_from(["degraded", "swap", "note"]), max_size=3)
    ):
        p.set_flag(name, draw(st.text(max_size=12)))
    for obj in draw(
        st.lists(st.sampled_from(list(DataObject)), max_size=6)
    ):
        p.note_object_bytes(obj, draw(st.integers(0, 2**48)))
    for obj, stage, kind, pattern, nbytes in draw(
        st.lists(_traffic_records, max_size=10)
    ):
        p.record_traffic(obj, stage, kind, pattern, nbytes)
    return p


class TestJsonRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(profiles())
    def test_lossless(self, profile):
        back = RunProfile.from_json(profile.to_json())
        assert back.engine == profile.engine
        assert back.stage_seconds == profile.stage_seconds
        assert back.counters == profile.counters
        assert back.flags == profile.flags
        assert back.object_bytes == profile.object_bytes
        assert back.traffic == profile.traffic
        # and the serialized form is a fixed point
        assert back.to_json() == profile.to_json()
