"""Tests for the rejected two-phase / upper-bound allocation engines."""

import pytest

from repro.core import contract
from repro.core.symbolic import (
    symbolic_count,
    two_phase_contract,
    upper_bound_count,
)
from repro.tensor import SparseTensor, random_tensor, random_tensor_fibered


@pytest.fixture
def pair():
    x = random_tensor_fibered((10, 10, 12, 12), 400, 2, 30, seed=221)
    y = random_tensor_fibered((12, 12, 8, 8), 900, 2, 100, seed=222)
    return x, y, (2, 3), (0, 1)


class TestCounts:
    def test_symbolic_count_is_exact(self, pair):
        x, y, cx, cy = pair
        ref = contract(x, y, cx, cy, method="vectorized")
        assert symbolic_count(x, y, cx, cy) == ref.nnz

    def test_upper_bound_dominates(self, pair):
        x, y, cx, cy = pair
        nnz_z = symbolic_count(x, y, cx, cy)
        bound = upper_bound_count(x, y, cx, cy)
        assert bound >= nnz_z
        ref = contract(x, y, cx, cy, method="vectorized")
        assert bound == ref.profile.counters["products"]

    def test_empty(self):
        x = SparseTensor.empty((3, 4))
        y = SparseTensor.empty((4, 5))
        assert symbolic_count(x, y, (1,), (0,)) == 0
        assert upper_bound_count(x, y, (1,), (0,)) == 0


class TestTwoPhase:
    @pytest.mark.parametrize("allocation", ["symbolic", "upper_bound"])
    def test_matches_reference(self, pair, allocation):
        x, y, cx, cy = pair
        ref = contract(x, y, cx, cy, method="dense") if max(
            x.shape + y.shape
        ) <= 16 else contract(x, y, cx, cy, method="vectorized")
        res = two_phase_contract(x, y, cx, cy, allocation=allocation)
        assert res.result.tensor.allclose(ref.tensor)

    def test_symbolic_allocates_exactly(self, pair):
        x, y, cx, cy = pair
        res = two_phase_contract(x, y, cx, cy, allocation="symbolic")
        assert res.allocated_nnz == res.result.nnz

    def test_upper_bound_never_underallocates(self, pair):
        x, y, cx, cy = pair
        res = two_phase_contract(x, y, cx, cy, allocation="upper_bound")
        assert res.allocated_nnz >= res.result.nnz

    def test_phase_times_recorded(self, pair):
        x, y, cx, cy = pair
        res = two_phase_contract(x, y, cx, cy)
        assert res.symbolic_seconds > 0
        assert res.numeric_seconds > 0

    def test_bad_strategy(self, pair):
        x, y, cx, cy = pair
        with pytest.raises(ValueError):
            two_phase_contract(x, y, cx, cy, allocation="oracle")

    def test_unsorted_output(self, pair):
        x, y, cx, cy = pair
        a = two_phase_contract(x, y, cx, cy, sort_output=False)
        b = two_phase_contract(x, y, cx, cy, sort_output=True)
        assert a.result.tensor.allclose(b.result.tensor)


class TestExperiment:
    def test_allocation_experiment(self):
        from repro.experiments import allocation

        rows = allocation.run(
            cases=(("nell2", 2), ("uber", 2)), scale=0.1
        )
        assert len(rows) == 2
        for row in rows:
            assert row.symbolic_overhead > 1.0  # pre-pass always costs
            assert row.memory_waste >= 1.0
        # nell2 is the accumulation-heavy case: real memory waste.
        nell = next(r for r in rows if "Nell2" in r.label)
        assert nell.memory_waste > 2.0
