"""Tests for out-of-core streaming contraction."""

import numpy as np
import pytest

from repro.core import contract
from repro.core.streaming import (
    contract_streaming,
    merge_outputs,
    split_tensor,
)
from repro.errors import ContractionError, ShapeError
from repro.tensor import SparseTensor, random_tensor, random_tensor_fibered


@pytest.fixture
def pair():
    x = random_tensor_fibered((10, 10, 12, 12), 500, 2, 40, seed=311)
    y = random_tensor_fibered((12, 12, 9, 9), 1200, 2, 150, seed=312)
    return x, y


class TestSplit:
    def test_partitions_cover_everything(self, pair):
        _, y = pair
        parts = list(split_tensor(y, 5))
        assert len(parts) == 5
        assert sum(p.nnz for p in parts) == y.nnz
        rebuilt = merge_outputs(parts)
        assert rebuilt.allclose(y)

    def test_more_parts_than_nnz(self):
        t = SparseTensor([[0, 0]], [1.0], (2, 2))
        parts = list(split_tensor(t, 5))
        assert sum(p.nnz for p in parts) == 1

    def test_bad_parts(self, pair):
        _, y = pair
        with pytest.raises(ShapeError):
            list(split_tensor(y, 0))


class TestMerge:
    def test_sums_overlapping_coordinates(self):
        a = SparseTensor([[0, 0]], [1.0], (2, 2))
        b = SparseTensor([[0, 0], [1, 1]], [2.0, 3.0], (2, 2))
        m = merge_outputs([a, b])
        assert m.to_dense()[0, 0] == pytest.approx(3.0)
        assert m.nnz == 2

    def test_empty_list_rejected(self):
        with pytest.raises(ContractionError):
            merge_outputs([])

    def test_shape_mismatch_rejected(self):
        a = SparseTensor.empty((2, 2))
        b = SparseTensor.empty((2, 3))
        with pytest.raises(ShapeError):
            merge_outputs([a, b])


class TestStreamingContraction:
    @pytest.mark.parametrize("parts", [1, 3, 7])
    def test_matches_monolithic(self, pair, parts):
        x, y = pair
        ref = contract(x, y, (2, 3), (0, 1), method="vectorized")
        res = contract_streaming(
            x, split_tensor(y, parts), (2, 3), (0, 1)
        )
        assert res.tensor.allclose(ref.tensor)
        assert res.profile.counters["streaming_parts"] == parts

    def test_products_conserved(self, pair):
        x, y = pair
        ref = contract(x, y, (2, 3), (0, 1), method="vectorized")
        res = contract_streaming(
            x, split_tensor(y, 4), (2, 3), (0, 1)
        )
        assert (
            res.profile.counters["products"]
            == ref.profile.counters["products"]
        )

    def test_sparta_engine_streaming(self, pair):
        x, y = pair
        ref = contract(x, y, (2, 3), (0, 1), method="vectorized")
        res = contract_streaming(
            x, split_tensor(y, 3), (2, 3), (0, 1),
            method="sparta", swap_larger_to_y=False,
        )
        assert res.tensor.allclose(ref.tensor)

    def test_empty_stream_rejected(self, pair):
        x, _ = pair
        with pytest.raises(ContractionError):
            contract_streaming(x, iter(()), (2, 3), (0, 1))

    def test_semiring_rejected(self, pair):
        x, y = pair
        from repro.core import MIN_PLUS

        with pytest.raises(ContractionError):
            contract_streaming(
                x, split_tensor(y, 2), (2, 3), (0, 1),
                semiring=MIN_PLUS,
            )

    def test_output_sorted(self, pair):
        x, y = pair
        res = contract_streaming(
            x, split_tensor(y, 3), (2, 3), (0, 1)
        )
        assert res.tensor.is_sorted()
