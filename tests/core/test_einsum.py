"""Tests for the einsum front end."""

import numpy as np
import pytest

from repro import einsum
from repro.errors import ContractionError
from repro.tensor import random_tensor


@pytest.fixture
def xy():
    return (
        random_tensor((4, 5, 3, 2), 30, seed=121),
        random_tensor((3, 2, 6), 25, seed=122),
    )


class TestBasic:
    def test_matches_numpy_einsum(self, xy):
        x, y = xy
        res = einsum("abij,ijc->abc", x, y)
        ref = np.einsum("abij,ijc->abc", x.to_dense(), y.to_dense())
        assert res.tensor.to_dense() == pytest.approx(ref)

    def test_implicit_output(self, xy):
        x, y = xy
        implicit = einsum("abij,ijc", x, y)
        explicit = einsum("abij,ijc->abc", x, y)
        assert implicit.tensor.allclose(explicit.tensor)

    def test_output_permutation(self, xy):
        x, y = xy
        res = einsum("abij,ijc->cab", x, y)
        ref = np.einsum("abij,ijc->cab", x.to_dense(), y.to_dense())
        assert res.tensor.to_dense() == pytest.approx(ref)
        assert res.tensor.is_sorted()

    def test_matrix_multiply(self):
        a = random_tensor((5, 4), 10, seed=123)
        b = random_tensor((4, 6), 10, seed=124)
        res = einsum("ik,kj->ij", a, b)
        assert res.tensor.to_dense() == pytest.approx(
            a.to_dense() @ b.to_dense()
        )

    def test_every_engine(self, xy):
        x, y = xy
        ref = einsum("abij,ijc->abc", x, y, method="dense")
        for method in ("spa", "coo_hta", "sparta", "vectorized"):
            res = einsum("abij,ijc->abc", x, y, method=method)
            assert res.tensor.allclose(ref.tensor), method

    def test_non_adjacent_contract_labels(self):
        x = random_tensor((4, 3, 5), 20, seed=125)
        y = random_tensor((6, 4, 5), 20, seed=126)
        res = einsum("axb,cab->xc", x, y)
        ref = np.einsum("axb,cab->xc", x.to_dense(), y.to_dense())
        assert res.tensor.to_dense() == pytest.approx(ref)


class TestValidation:
    def test_bad_spec(self, xy):
        x, y = xy
        with pytest.raises(ContractionError):
            einsum("abij", x, y)
        with pytest.raises(ContractionError):
            einsum("ab,cd,ef->x", x, y)

    def test_repeated_label_in_operand(self, xy):
        x, y = xy
        with pytest.raises(ContractionError):
            einsum("aaij,ijc->ac", x, y)

    def test_label_count_mismatch(self, xy):
        x, y = xy
        with pytest.raises(ContractionError):
            einsum("abi,ijc->abc", x, y)

    def test_no_shared_labels(self):
        a = random_tensor((3, 3), 5, seed=127)
        b = random_tensor((4, 4), 5, seed=128)
        with pytest.raises(ContractionError):
            einsum("ab,cd->abcd", a, b)

    def test_contracted_label_in_output(self, xy):
        x, y = xy
        with pytest.raises(ContractionError):
            einsum("abij,ijc->abci", x, y)

    def test_wrong_output_labels(self, xy):
        x, y = xy
        with pytest.raises(ContractionError):
            einsum("abij,ijc->abd", x, y)
