"""Unit tests for the operand-keyed build caches (repro/core/htycache.py)."""

import numpy as np
import pytest

from repro.core import contract
from repro.core.htycache import (
    CacheStats,
    HtYCache,
    LRUCache,
    cached_plan,
    default_hty_cache,
    default_plan_cache,
)
from repro.core.profile import DataObject, Stage
from repro.core.sequence import ContractionSequence
from repro.errors import ContractionError
from repro.memory.trace import verify_table2
from repro.tensor import SparseTensor, random_tensor_fibered
from repro.tensor.decomposition import cp_als


@pytest.fixture
def pair():
    x = random_tensor_fibered((10, 10, 12, 12), 600, 2, 60, seed=31)
    y = random_tensor_fibered((12, 12, 9, 9), 1000, 2, 120, seed=32)
    return x, y


class TestLRUCache:
    def test_hit_miss_counts(self):
        lru = LRUCache(maxsize=2)
        assert lru.get("a") is None
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.stats.hits == 1
        assert lru.stats.misses == 1
        assert lru.stats.hit_rate == 0.5

    def test_eviction_is_lru_order(self):
        lru = LRUCache(maxsize=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh a; b becomes least-recent
        lru.put("c", 3)
        assert "b" not in lru
        assert "a" in lru and "c" in lru
        assert lru.stats.evictions == 1

    def test_bad_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)

    def test_clear_resets(self):
        lru = LRUCache()
        lru.put("a", 1)
        lru.get("a")
        lru.clear()
        assert len(lru) == 0
        assert lru.stats == CacheStats()


class TestHtYCache:
    def test_miss_then_hit(self, pair):
        _, y = pair
        cache = HtYCache()
        h1, hit1 = cache.get_or_build(y, (0, 1))
        h2, hit2 = cache.get_or_build(y, (0, 1))
        assert not hit1 and hit2
        assert h1 is h2
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_key_includes_modes_and_buckets(self, pair):
        _, y = pair
        cache = HtYCache()
        cache.get_or_build(y, (0, 1))
        _, hit_modes = cache.get_or_build(y, (1, 0))
        _, hit_buckets = cache.get_or_build(y, (0, 1), num_buckets=64)
        assert not hit_modes and not hit_buckets
        assert len(cache) == 3

    def test_content_keyed_not_identity_keyed(self, pair):
        _, y = pair
        twin = SparseTensor(y.indices, y.values, y.shape)  # deep copy
        cache = HtYCache()
        cache.get_or_build(y, (0, 1))
        _, hit = cache.get_or_build(twin, (0, 1))
        assert hit  # same bytes, same key

    def test_eviction(self, pair):
        _, y = pair
        other = random_tensor_fibered((12, 12, 9, 9), 500, 2, 60, seed=33)
        cache = HtYCache(maxsize=1)
        cache.get_or_build(y, (0, 1))
        cache.get_or_build(other, (0, 1))
        _, hit = cache.get_or_build(y, (0, 1))
        assert not hit  # evicted by `other`
        assert cache.stats.evictions >= 1

    def test_identity_stamped(self, pair):
        _, y = pair
        hty, _ = HtYCache().get_or_build(y, (0, 1))
        assert hty.source_fingerprint == y.fingerprint()
        assert hty.identity[0] == y.fingerprint()


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self, pair):
        _, y = pair
        twin = SparseTensor(y.indices, y.values, y.shape)
        assert y.fingerprint() == twin.fingerprint()

    def test_value_change_changes_fingerprint(self, pair):
        _, y = pair
        vals = y.values.copy()
        vals[0] += 1.0
        other = SparseTensor(y.indices, vals, y.shape)
        assert y.fingerprint() != other.fingerprint()

    def test_shape_in_fingerprint(self):
        a = SparseTensor(np.array([[0, 0]]), [1.0], (2, 2))
        b = SparseTensor(np.array([[0, 0]]), [1.0], (2, 3))
        assert a.fingerprint() != b.fingerprint()


class TestContractWithCache:
    def test_results_identical_on_hit(self, pair):
        x, y = pair
        cache = HtYCache()
        cold = contract(
            x, y, (2, 3), (0, 1), method="sparta",
            swap_larger_to_y=False, hty_cache=cache,
        )
        warm = contract(
            x, y, (2, 3), (0, 1), method="sparta",
            swap_larger_to_y=False, hty_cache=cache,
        )
        assert np.array_equal(cold.tensor.indices, warm.tensor.indices)
        assert np.array_equal(cold.tensor.values, warm.tensor.values)

    def test_hit_accounting(self, pair):
        """Stage-1 on a hit: objects still noted, no Y/HtY build traffic."""
        x, y = pair
        cache = HtYCache()
        cold = contract(
            x, y, (2, 3), (0, 1), method="sparta",
            swap_larger_to_y=False, hty_cache=cache,
        )
        warm = contract(
            x, y, (2, 3), (0, 1), method="sparta",
            swap_larger_to_y=False, hty_cache=cache,
        )
        assert cold.profile.counters.get("hty_cache_misses") == 1
        assert "hty_cache_hits" not in cold.profile.counters
        assert warm.profile.counters.get("hty_cache_hits") == 1
        # The simulator still needs resident footprints...
        assert warm.profile.object_bytes[DataObject.HTY] > 0
        assert warm.profile.object_bytes[DataObject.Y] > 0
        # ...but no conversion traffic was charged.
        def build_traffic(profile):
            return sum(
                rec.nbytes
                for rec in profile.traffic
                if rec.stage is Stage.INPUT_PROCESSING
                and rec.obj in (DataObject.Y, DataObject.HTY)
            )
        assert build_traffic(cold.profile) > 0
        assert build_traffic(warm.profile) == 0
        # Table 2 still verifies on the hit profile.
        assert verify_table2(warm.profile) == []

    def test_use_hty_cache_flag(self, pair):
        x, y = pair
        default_hty_cache().clear()
        contract(x, y, (2, 3), (0, 1), method="sparta", use_hty_cache=True)
        res = contract(
            x, y, (2, 3), (0, 1), method="sparta", use_hty_cache=True
        )
        assert res.profile.counters.get("hty_cache_hits") == 1
        default_hty_cache().clear()

    def test_use_hty_cache_rejected_for_other_engines(self, pair):
        x, y = pair
        with pytest.raises(ContractionError):
            contract(x, y, (2, 3), (0, 1), method="spa", use_hty_cache=True)


class TestSequenceReuse:
    def test_repeated_operand_hits(self):
        rng = np.random.default_rng(8)
        n = 400
        rows = np.sort(rng.choice(3000, n, replace=False))
        y = SparseTensor(
            np.column_stack((rows, rng.permutation(3000)[:n])),
            rng.standard_normal(n),
            (3000, 3000),
        )
        xi = np.column_stack(
            (rng.integers(0, 10, 80), rng.choice(rows, 80))
        )
        x = SparseTensor(xi, rng.standard_normal(80), (10, 3000))
        seq = ContractionSequence(x)
        for _ in range(4):
            seq.then(y, (1,), (0,))
        res = seq.run(method="sparta", swap_larger_to_y=False)
        assert res.cache_stats.misses == 1
        assert res.cache_stats.hits == 3
        off = seq.run(
            method="sparta", swap_larger_to_y=False, reuse_hty=False
        )
        assert off.cache_stats is None
        assert np.array_equal(res.tensor.indices, off.tensor.indices)
        assert np.array_equal(res.tensor.values, off.tensor.values)


class TestPlanCaches:
    def test_cached_plan_identical(self, pair):
        x, y = pair
        p1 = cached_plan(x, y, (2, 3), (0, 1))
        p2 = cached_plan(x, y, (2, 3), (0, 1))
        assert p1 is p2

    def test_cached_plan_propagates_errors(self, pair):
        x, y = pair
        with pytest.raises(ContractionError):
            cached_plan(x, y, (0,), (0,))  # extent mismatch

    def test_cp_als_plan_cache_bit_identical(self):
        rng = np.random.default_rng(4)
        shape = (12, 10, 8)
        flat = rng.choice(np.prod(shape), 250, replace=False)
        idx = np.array(np.unravel_index(flat, shape)).T
        t = SparseTensor(idx, rng.standard_normal(250), shape)
        a = cp_als(t, 5, iterations=4, seed=0, use_plan_cache=False)
        b = cp_als(t, 5, iterations=4, seed=0, use_plan_cache=True)
        c = cp_als(t, 5, iterations=4, seed=0, use_plan_cache=True)
        assert a.fits == b.fits == c.fits
        for fa, fb, fc in zip(a.factors, b.factors, c.factors):
            assert np.array_equal(fa, fb)
            assert np.array_equal(fb, fc)
        key = ("mttkrp", t.fingerprint(), 0)
        assert default_plan_cache().get(key) is not None
