"""Systematic engine-configuration matrix.

Every combination of Y structure x accumulator x granularity x X format
the looped driver supports must compute the same tensor. This guards the
option space the individual engine tests sample only partially.
"""

import pytest

from repro.core import contract
from repro.core.looped import looped_contract
from repro.tensor import random_tensor, random_tensor_fibered

Y_STRUCTURES = ("coo", "coo_bsearch", "hash")
ACCUMULATORS = ("spa", "hash")
GRANULARITIES = ("subtensor", "element")
X_FORMATS = ("coo", "hicoo")


@pytest.fixture(scope="module")
def workload():
    x = random_tensor_fibered((8, 8, 10, 10), 300, 2, 25, seed=301)
    y = random_tensor_fibered((10, 10, 6, 6), 500, 2, 60, seed=302)
    ref = contract(x, y, (2, 3), (0, 1), method="dense")
    return x, y, ref


@pytest.mark.parametrize("y_structure", Y_STRUCTURES)
@pytest.mark.parametrize("accumulator", ACCUMULATORS)
@pytest.mark.parametrize("granularity", GRANULARITIES)
def test_engine_matrix(workload, y_structure, accumulator, granularity):
    x, y, ref = workload
    res = looped_contract(
        x, y, (2, 3), (0, 1),
        engine_name="matrix-test",
        y_structure=y_structure,
        accumulator=accumulator,
        granularity=granularity,
    )
    assert res.tensor.allclose(ref.tensor)


@pytest.mark.parametrize("x_format", X_FORMATS)
@pytest.mark.parametrize("y_structure", Y_STRUCTURES)
def test_x_format_matrix(workload, x_format, y_structure):
    x, y, ref = workload
    res = looped_contract(
        x, y, (2, 3), (0, 1),
        engine_name="matrix-test",
        y_structure=y_structure,
        accumulator="hash",
        x_format=x_format,
    )
    assert res.tensor.allclose(ref.tensor)


@pytest.mark.parametrize("y_structure", Y_STRUCTURES)
def test_probe_counters_present(workload, y_structure):
    x, y, _ = workload
    res = looped_contract(
        x, y, (2, 3), (0, 1),
        engine_name="matrix-test",
        y_structure=y_structure,
        accumulator="hash",
    )
    assert res.profile.counters["search_probes"] > 0
    assert res.profile.counters["products"] > 0


def test_empty_inputs_across_matrix():
    from repro.tensor import SparseTensor

    x = SparseTensor.empty((3, 4))
    y = SparseTensor.empty((4, 5))
    for y_structure in Y_STRUCTURES:
        for accumulator in ACCUMULATORS:
            res = looped_contract(
                x, y, (1,), (0,),
                engine_name="matrix-test",
                y_structure=y_structure,
                accumulator=accumulator,
            )
            assert res.nnz == 0
