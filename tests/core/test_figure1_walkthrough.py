"""The paper's Figure-1 walk-through as a fidelity test.

Figure 1 traces ``Z = X x_{3,4}^{1,2} Y`` on two tiny fourth-order
tensors. The figure's concrete anchor points (from its text):

* X contains non-zeros including ``x(0,1,0,0) = 2.0`` and another entry
  with value 3.0;
* Y contains a sub-tensor ``Y(0,0,:,:)`` with ``y(0,0,0,3) = 4.0`` plus
  entries 5.0 and 6.0;
* the accumulation step forms ``z(0,1,0,3) = x(0,1,0,0) * y(0,0,0,3)``;
* HtY keys are the LN of (j1, j2); HtA keys the LN of (j3, j4): the LN
  of the free tuple (0, 3) is ``0 * J4 + 3 = 3``.

Every engine must produce the same pipeline behaviour on this input.
"""

import pytest

from repro.core import contract
from repro.hashtable import HashTensor
from repro.tensor import SparseTensor, linearize_tuple

# X in RI1xI2xI3xI4 with (i3, i4) as contract modes; 0-based indices.
X = SparseTensor(
    indices=[(0, 1, 0, 0), (1, 0, 1, 1)],
    values=[2.0, 3.0],
    shape=(2, 2, 2, 2),
)
# Y in RJ1xJ2xJ3xJ4 with (j1, j2) as contract modes; J4 = 4 so the LN of
# (0, 3) is 3, as the figure shows.
Y = SparseTensor(
    indices=[(0, 0, 0, 3), (0, 0, 1, 0), (1, 1, 0, 2)],
    values=[4.0, 5.0, 6.0],
    shape=(2, 2, 2, 4),
)

ENGINES = ("spa", "coo_hta", "sparta", "vectorized", "dense")


class TestFigure1:
    def test_accumulation_anchor(self):
        """z(0,1,0,3) = x(0,1,0,0) * y(0,0,0,3) = 8.0."""
        for method in ENGINES:
            res = contract(X, Y, (2, 3), (0, 1), method=method)
            dense = res.tensor.to_dense()
            assert dense[0, 1, 0, 3] == pytest.approx(8.0), method

    def test_full_output(self):
        """Both X rows contribute: x(0,1,0,0) pairs with Y(0,0,:,:),
        x(1,0,1,1) pairs with Y(1,1,:,:)."""
        res = contract(X, Y, (2, 3), (0, 1), method="sparta")
        expected = {
            (0, 1, 0, 3): 2.0 * 4.0,
            (0, 1, 1, 0): 2.0 * 5.0,
            (1, 0, 0, 2): 3.0 * 6.0,
        }
        got = {
            tuple(int(v) for v in row): float(val)
            for row, val in zip(res.tensor.indices, res.tensor.values)
        }
        assert got == pytest.approx(expected)

    def test_output_shape_rule(self):
        """N_Z = |F_X| + |F_Y| = 4, dims (I1, I2, J3, J4)."""
        res = contract(X, Y, (2, 3), (0, 1), method="sparta")
        assert res.tensor.shape == (2, 2, 2, 4)

    def test_ln_key_of_paper_example(self):
        """The figure's LN example: tuple (0, 3) with J4 = 4 -> 3."""
        assert linearize_tuple((0, 3), (2, 4)) == 3

    def test_hty_structure(self):
        """HtY keyed by LN(j1, j2): Y(0,0,:,:) holds two entries whose
        stored values are ((LN free, val)) tuples, as in the figure."""
        hty = HashTensor.from_coo(Y, (0, 1))
        assert hty.num_groups == 2
        key_00 = linearize_tuple((0, 0), (2, 2))
        hit = hty.lookup(key_00)
        assert hit is not None
        free_ln, vals = hit
        assert sorted(vals.tolist()) == [4.0, 5.0]
        # free key of (0, 3) is 3
        assert 3 in free_ln.tolist()

    def test_miss_skips(self):
        """An X non-zero whose contract indices miss Y contributes
        nothing (Algorithm 2 lines 8-9)."""
        x2 = SparseTensor(
            indices=[(0, 0, 1, 0)], values=[9.0], shape=(2, 2, 2, 2)
        )
        for method in ENGINES:
            res = contract(x2, Y, (2, 3), (0, 1), method=method)
            assert res.nnz == 0, method
