"""Tests for RunProfile instrumentation."""

import pytest

from repro.core import contract
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.stages import STAGE_ORDER, Stage
from repro.tensor import random_tensor


class TestRunProfile:
    def test_add_time_accumulates(self):
        p = RunProfile("x")
        p.add_time(Stage.ACCUMULATION, 1.0)
        p.add_time(Stage.ACCUMULATION, 0.5)
        assert p.stage_seconds[Stage.ACCUMULATION] == pytest.approx(1.5)
        assert p.total_seconds == pytest.approx(1.5)

    def test_fractions_sum_to_one(self):
        p = RunProfile("x")
        p.add_time(Stage.INDEX_SEARCH, 3.0)
        p.add_time(Stage.ACCUMULATION, 1.0)
        fr = p.stage_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr[Stage.INDEX_SEARCH] == pytest.approx(0.75)

    def test_fractions_empty(self):
        assert RunProfile("x").stage_fractions() == {}

    def test_bump(self):
        p = RunProfile("x")
        p.bump("ops")
        p.bump("ops", 5)
        assert p.counters["ops"] == 6

    def test_zero_byte_traffic_skipped(self):
        p = RunProfile("x")
        p.record_traffic(
            DataObject.X, Stage.INDEX_SEARCH,
            AccessKind.READ, AccessPattern.SEQUENTIAL, 0,
        )
        assert p.traffic == []

    def test_traffic_filters(self):
        p = RunProfile("x")
        p.record_traffic(
            DataObject.X, Stage.INDEX_SEARCH,
            AccessKind.READ, AccessPattern.SEQUENTIAL, 100,
        )
        p.record_traffic(
            DataObject.HTY, Stage.INDEX_SEARCH,
            AccessKind.READ, AccessPattern.RANDOM, 50,
        )
        assert p.traffic_bytes() == 150
        assert p.traffic_bytes(obj=DataObject.X) == 100
        assert p.traffic_bytes(pattern=AccessPattern.RANDOM) == 50
        assert p.traffic_bytes(kind=AccessKind.WRITE) == 0
        assert p.traffic_bytes(stage=Stage.ACCUMULATION) == 0

    def test_object_bytes_takes_peak(self):
        p = RunProfile("x")
        p.note_object_bytes(DataObject.HTA, 100)
        p.note_object_bytes(DataObject.HTA, 50)
        assert p.object_bytes[DataObject.HTA] == 100
        assert p.peak_bytes() == 100


class TestEngineProfiles:
    @pytest.fixture
    def result(self):
        x = random_tensor((8, 8, 6, 6), 200, seed=61)
        y = random_tensor((6, 6, 9, 9), 300, seed=62)
        return contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )

    def test_all_stages_timed(self, result):
        for stage in STAGE_ORDER:
            assert stage in result.profile.stage_seconds

    def test_object_sizes_recorded(self, result):
        for obj in (DataObject.X, DataObject.Y, DataObject.HTY):
            assert result.profile.object_bytes.get(obj, 0) > 0

    def test_counters_present(self, result):
        for counter in (
            "nnz_x", "nnz_y", "nnz_z", "products",
            "search_probes", "num_subtensors", "hty_groups",
        ):
            assert counter in result.profile.counters, counter

    def test_traffic_recorded_for_all_stages(self, result):
        stages = {rec.stage for rec in result.profile.traffic}
        assert Stage.INPUT_PROCESSING in stages
        assert Stage.INDEX_SEARCH in stages
        assert Stage.ACCUMULATION in stages
        assert Stage.WRITEBACK in stages
