"""Tests for the stage taxonomy and the error hierarchy."""

import pytest

from repro import errors
from repro.core.stages import (
    COMPUTATION_STAGES,
    IO_PROCESSING_STAGES,
    STAGE_ORDER,
    Stage,
)


class TestStages:
    def test_five_stages_in_order(self):
        assert len(STAGE_ORDER) == 5
        assert STAGE_ORDER[0] is Stage.INPUT_PROCESSING
        assert STAGE_ORDER[-1] is Stage.OUTPUT_SORTING

    def test_paper_groupings_partition(self):
        # Computation = stages 2-4; I/O processing = stages 1 and 5.
        assert set(COMPUTATION_STAGES) | set(IO_PROCESSING_STAGES) == set(
            STAGE_ORDER
        )
        assert not set(COMPUTATION_STAGES) & set(IO_PROCESSING_STAGES)
        assert COMPUTATION_STAGES == (
            Stage.INDEX_SEARCH,
            Stage.ACCUMULATION,
            Stage.WRITEBACK,
        )

    def test_string_values_stable(self):
        # Profiles serialize stage values; renames break saved data.
        assert Stage("input_processing") is Stage.INPUT_PROCESSING
        assert Stage("index_search") is Stage.INDEX_SEARCH
        assert Stage("accumulation") is Stage.ACCUMULATION
        assert Stage("writeback") is Stage.WRITEBACK
        assert Stage("output_sorting") is Stage.OUTPUT_SORTING


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.ShapeError,
            errors.ContractionError,
            errors.LinearizationOverflowError,
            errors.FormatError,
            errors.CapacityError,
            errors.PlacementError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_stdlib_compatibility(self):
        # Callers catching stdlib types still work.
        assert issubclass(errors.ShapeError, ValueError)
        assert issubclass(errors.ContractionError, ValueError)
        assert issubclass(errors.LinearizationOverflowError, OverflowError)
        assert issubclass(errors.FormatError, ValueError)
        assert issubclass(errors.CapacityError, RuntimeError)

    def test_single_catch_at_api_boundary(self):
        from repro.tensor import SparseTensor

        with pytest.raises(errors.ReproError):
            SparseTensor([[0, 9]], [1.0], (2, 3))
