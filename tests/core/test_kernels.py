"""Property tests for the fused flat-batch kernel (repro/core/kernels.py).

The fused ``granularity="subtensor"`` path must be *exactly* equal — keys
and bit-level values — to the per-element reference for every engine, on
randomized shapes, densities and contract-mode choices, and must agree
with the dense reference numerically.
"""

import numpy as np
import pytest

from repro.core import contract
from repro.core.kernels import hta_model_nbytes
from repro.tensor import SparseTensor, random_tensor_fibered

ENGINES = ("spa", "coo_hta", "sparta")


def _random_case(rng):
    """Random orders, extents, densities and (non-adjacent) modes."""
    ox, oy = int(rng.integers(2, 5)), int(rng.integers(2, 5))
    nm = int(rng.integers(1, min(ox, oy)))
    cx = sorted(rng.choice(ox, nm, replace=False).tolist())
    cy = sorted(rng.choice(oy, nm, replace=False).tolist())
    xs = [int(rng.integers(2, 8)) for _ in range(ox)]
    ys = [int(rng.integers(2, 8)) for _ in range(oy)]
    for a, b in zip(cx, cy):
        ys[b] = xs[a]

    def rand_tensor(shape):
        cap = int(np.prod(shape))
        nnz = int(rng.integers(1, max(2, int(cap * 0.5))))
        flat = rng.choice(cap, size=min(nnz, cap), replace=False)
        idx = np.array(np.unravel_index(flat, shape)).T
        return SparseTensor(idx, rng.standard_normal(idx.shape[0]), shape)

    return rand_tensor(tuple(xs)), rand_tensor(tuple(ys)), cx, cy


def _assert_exact(a, b, label):
    __tracebackhide__ = True
    assert np.array_equal(a.tensor.indices, b.tensor.indices), (
        f"{label}: index mismatch"
    )
    assert np.array_equal(a.tensor.values, b.tensor.values), (
        f"{label}: values not bit-identical"
    )


class TestFusedEqualsReference:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("engine", ENGINES)
    def test_fused_bit_identical_to_element(self, seed, engine):
        rng = np.random.default_rng(1000 + seed)
        x, y, cx, cy = _random_case(rng)
        kwargs = {}
        if engine == "sparta":
            # exercise both sides of the swap rule
            kwargs["swap_larger_to_y"] = bool(seed % 2)
        fused = contract(
            x, y, cx, cy, method=engine, granularity="subtensor", **kwargs
        )
        ref = contract(
            x, y, cx, cy, method=engine, granularity="element", **kwargs
        )
        _assert_exact(fused, ref, f"{engine} seed={seed}")

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("engine", ENGINES)
    def test_fused_matches_dense(self, seed, engine):
        rng = np.random.default_rng(2000 + seed)
        x, y, cx, cy = _random_case(rng)
        fused = contract(x, y, cx, cy, method=engine)
        dense = contract(x, y, cx, cy, method="dense")
        assert fused.tensor.allclose(dense.tensor)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fused_bit_identical_to_subtensor_loop(self, engine):
        rng = np.random.default_rng(77)
        x, y, cx, cy = _random_case(rng)
        fused = contract(x, y, cx, cy, method=engine)
        loop = contract(
            x, y, cx, cy, method=engine, granularity="subtensor_loop"
        )
        _assert_exact(fused, loop, engine)

    def test_fused_chunked_bit_identical(self):
        """Tiny chunk budget forces many sub-tensor-aligned chunks."""
        x = random_tensor_fibered((10, 12, 12), 400, 1, 50, seed=5)
        y = random_tensor_fibered((12, 12, 9, 8), 900, 2, 120, seed=6)
        from repro.core import kernels

        ref = contract(
            x, y, (1, 2), (0, 1), method="sparta",
            swap_larger_to_y=False, granularity="element",
        )
        old = kernels.DEFAULT_CHUNK_PAIRS
        kernels.DEFAULT_CHUNK_PAIRS = 8
        try:
            fused = contract(
                x, y, (1, 2), (0, 1), method="sparta",
                swap_larger_to_y=False,
            )
        finally:
            kernels.DEFAULT_CHUNK_PAIRS = old
        _assert_exact(fused, ref, "chunked")

    def test_fused_hicoo_and_custom_buckets(self):
        x = random_tensor_fibered((8, 9, 9), 200, 1, 30, seed=9)
        y = random_tensor_fibered((9, 9, 7), 300, 2, 60, seed=10)
        ref = contract(
            x, y, (1, 2), (0, 1), method="sparta",
            swap_larger_to_y=False, granularity="element",
            num_buckets=32,
        )
        fused = contract(
            x, y, (1, 2), (0, 1), method="sparta",
            swap_larger_to_y=False, x_format="hicoo", num_buckets=32,
        )
        _assert_exact(fused, ref, "hicoo+buckets")


class TestFusedEdgeCases:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_empty_x(self, engine):
        x = SparseTensor.empty((3, 4))
        y = random_tensor_fibered((4, 5), 8, 1, 4, seed=1)
        res = contract(x, y, (1,), (0,), method=engine)
        assert res.nnz == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_no_matches(self, engine):
        x = SparseTensor(np.array([[0, 0], [1, 1]]), [1.0, 2.0], (2, 4))
        y = SparseTensor(np.array([[2, 0], [3, 1]]), [3.0, 4.0], (4, 2))
        res = contract(x, y, (1,), (0,), method=engine)
        assert res.nnz == 0

    def test_unsorted_output(self):
        x = random_tensor_fibered((6, 8, 8), 100, 1, 12, seed=2)
        y = random_tensor_fibered((8, 8, 5), 150, 2, 40, seed=3)
        a = contract(
            x, y, (1, 2), (0, 1), method="sparta", sort_output=False
        )
        b = contract(x, y, (1, 2), (0, 1), method="sparta")
        assert a.tensor.sort().allclose(b.tensor)


class TestFusedAccounting:
    """The fused path must charge the loop path's counters and traffic."""

    @pytest.fixture(scope="class")
    def pair(self):
        x = random_tensor_fibered((12, 12, 14, 14), 900, 2, 80, seed=21)
        y = random_tensor_fibered((14, 14, 10, 10), 1500, 2, 150, seed=22)
        return x, y

    @pytest.mark.parametrize("engine", ENGINES)
    def test_counters_match_loop_path(self, pair, engine):
        x, y = pair
        kwargs = (
            {"swap_larger_to_y": False} if engine == "sparta" else {}
        )
        fused = contract(x, y, (2, 3), (0, 1), method=engine, **kwargs)
        loop = contract(
            x, y, (2, 3), (0, 1), method=engine,
            granularity="subtensor_loop", **kwargs,
        )
        for counter in (
            "nnz_x", "nnz_y", "nnz_z", "products", "num_subtensors",
            "search_probes", "accum_probes",
        ):
            assert fused.profile.counters.get(counter) == (
                loop.profile.counters.get(counter)
            ), counter

    def test_traffic_objects_match_loop_path(self, pair):
        x, y = pair
        fused = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )
        loop = contract(
            x, y, (2, 3), (0, 1), method="sparta",
            swap_larger_to_y=False, granularity="subtensor_loop",
        )
        key = lambda rec: (rec.obj, rec.stage, rec.kind, rec.pattern)
        assert {key(r) for r in fused.profile.traffic} == {
            key(r) for r in loop.profile.traffic
        }

    def test_hash_probes_are_per_run(self, pair):
        """A cached HtY must not leak probe counts across runs."""
        from repro.core.htycache import HtYCache

        x, y = pair
        cache = HtYCache()
        first = contract(
            x, y, (2, 3), (0, 1), method="sparta",
            swap_larger_to_y=False, hty_cache=cache,
        )
        second = contract(
            x, y, (2, 3), (0, 1), method="sparta",
            swap_larger_to_y=False, hty_cache=cache,
        )
        assert second.profile.counters["hash_probes"] == (
            first.profile.counters["hash_probes"]
        )


class TestHtaModel:
    def test_empty_accumulator_baseline(self):
        # bucket heads (16*8) + three 16-entry arrays (3*16*8)
        assert hta_model_nbytes(0) == 16 * 8 + 3 * 16 * 8

    def test_growth_doubles(self):
        assert hta_model_nbytes(16) == 16 * 8 + 3 * 16 * 8
        assert hta_model_nbytes(17) == 16 * 8 + 3 * 32 * 8
        assert hta_model_nbytes(100) == 16 * 8 + 3 * 128 * 8

    def test_custom_buckets(self):
        assert hta_model_nbytes(10, 64) == 64 * 8 + 3 * 16 * 8
