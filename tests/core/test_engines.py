"""Cross-engine correctness tests: every engine vs the dense reference."""

import numpy as np
import pytest

from repro.core import contract, engines
from repro.errors import ContractionError
from repro.tensor import SparseTensor, random_tensor, random_tensor_fibered

SPARSE_ENGINES = ("spa", "coo_hta", "sparta", "vectorized")


def _check_all(x, y, cx, cy):
    ref = contract(x, y, cx, cy, method="dense")
    for method in SPARSE_ENGINES:
        res = contract(x, y, cx, cy, method=method)
        assert res.tensor.allclose(ref.tensor), method
        assert res.plan.out_shape == ref.plan.out_shape
    return ref


class TestAgainstDense:
    def test_paper_example_shape(self, small_pair):
        x, y, cx, cy = small_pair
        ref = _check_all(x, y, cx, cy)
        assert ref.tensor.shape == (6, 5, 7, 8)

    def test_single_contract_mode(self):
        x = random_tensor((5, 6, 4), 30, seed=21)
        y = random_tensor((4, 7), 15, seed=22)
        _check_all(x, y, (2,), (0,))

    def test_three_contract_modes(self):
        x = random_tensor((3, 4, 5, 6), 50, seed=23)
        y = random_tensor((4, 5, 6, 2), 50, seed=24)
        _check_all(x, y, (1, 2, 3), (0, 1, 2))

    def test_non_adjacent_contract_modes(self):
        x = random_tensor((4, 5, 6), 40, seed=25)
        y = random_tensor((7, 4, 6), 40, seed=26)
        _check_all(x, y, (0, 2), (1, 2))

    def test_order_2_equals_matmul(self):
        a = random_tensor((8, 6), 20, seed=27)
        b = random_tensor((6, 9), 20, seed=28)
        ref = a.to_dense() @ b.to_dense()
        for method in SPARSE_ENGINES:
            res = contract(a, b, (1,), (0,), method=method)
            assert res.tensor.to_dense() == pytest.approx(ref)

    def test_order_5(self):
        x = random_tensor((3, 3, 3, 3, 3), 60, seed=29)
        y = random_tensor((3, 3, 4), 20, seed=30)
        _check_all(x, y, (3, 4), (0, 1))

    def test_no_matches(self):
        # X's contract indices never appear in Y.
        x = SparseTensor([[0, 0], [1, 1]], [1.0, 2.0], (2, 4))
        y = SparseTensor([[2, 0], [3, 1]], [1.0, 2.0], (4, 2))
        for method in SPARSE_ENGINES:
            res = contract(x, y, (1,), (0,), method=method)
            assert res.nnz == 0

    def test_empty_inputs(self):
        x = SparseTensor.empty((3, 4))
        y = SparseTensor.empty((4, 5))
        for method in SPARSE_ENGINES:
            res = contract(x, y, (1,), (0,), method=method)
            assert res.nnz == 0
            assert res.tensor.shape == (3, 5)

    def test_cancellation_to_zero(self):
        # Products that cancel exactly; engines may store an explicit
        # zero, dense drops it — allclose handles both via pruning.
        x = SparseTensor([[0, 0], [0, 1]], [1.0, 1.0], (1, 2))
        y = SparseTensor([[0, 0], [1, 0]], [1.0, -1.0], (2, 1))
        for method in SPARSE_ENGINES:
            res = contract(x, y, (1,), (0,), method=method)
            assert res.tensor.to_dense()[0, 0] == pytest.approx(0.0)

    def test_duplicate_coordinate_inputs(self):
        # COO inputs with duplicates act as their coalesced sum.
        x = SparseTensor([[0, 0], [0, 0]], [1.0, 2.0], (1, 2))
        y = SparseTensor([[0, 0]], [4.0], (2, 1))
        ref = contract(x.coalesce(), y, (1,), (0,), method="dense")
        for method in SPARSE_ENGINES:
            res = contract(x, y, (1,), (0,), method=method)
            assert res.tensor.allclose(ref.tensor), method

    def test_fibered_inputs(self):
        x = random_tensor_fibered((10, 10, 12, 12), 500, 2, 30, seed=31)
        y = random_tensor_fibered((12, 12, 9, 9), 800, 2, 100, seed=32)
        _check_all(x, y, (2, 3), (0, 1))


class TestEngineOptions:
    def test_unknown_method(self, small_pair):
        x, y, cx, cy = small_pair
        with pytest.raises(ContractionError):
            contract(x, y, cx, cy, method="nope")

    def test_engines_listing(self):
        assert set(engines()) == {
            "sparta", "coo_hta", "spa", "vectorized", "dense", "parallel"
        }

    def test_sort_output_flag(self, small_pair):
        x, y, cx, cy = small_pair
        sorted_res = contract(x, y, cx, cy, method="sparta")
        unsorted_res = contract(
            x, y, cx, cy, method="sparta", sort_output=False
        )
        assert sorted_res.tensor.is_sorted()
        assert unsorted_res.tensor.allclose(sorted_res.tensor)

    def test_element_granularity_agrees(self, small_pair):
        x, y, cx, cy = small_pair
        ref = contract(x, y, cx, cy, method="dense")
        for method in ("spa", "coo_hta", "sparta"):
            res = contract(
                x, y, cx, cy, method=method, granularity="element"
            )
            assert res.tensor.allclose(ref.tensor), method

    def test_sparta_swap_rule(self):
        big = random_tensor((5, 6, 4, 3), 150, seed=33)
        small = random_tensor((4, 3, 7), 20, seed=34)
        ref = contract(big, small, (2, 3), (0, 1), method="dense")
        res = contract(big, small, (2, 3), (0, 1), method="sparta")
        assert res.profile.counters.get("swapped_operands") == 1
        assert res.tensor.allclose(ref.tensor)

    def test_vectorized_chunking(self, small_pair):
        x, y, cx, cy = small_pair
        ref = contract(x, y, cx, cy, method="dense")
        res = contract(
            x, y, cx, cy, method="vectorized", chunk_pairs=7
        )
        assert res.tensor.allclose(ref.tensor)

    def test_custom_buckets(self, small_pair):
        x, y, cx, cy = small_pair
        ref = contract(x, y, cx, cy, method="dense")
        res = contract(
            x, y, cx, cy, method="sparta",
            num_buckets=4, accumulator_buckets=4,
        )
        assert res.tensor.allclose(ref.tensor)

    def test_hicoo_x_format(self, small_pair):
        x, y, cx, cy = small_pair
        ref = contract(x, y, cx, cy, method="dense")
        res = contract(
            x, y, cx, cy, method="sparta",
            swap_larger_to_y=False, x_format="hicoo",
        )
        assert res.tensor.allclose(ref.tensor)
        assert "x_compression_x1000" in res.profile.counters

    def test_bad_x_format(self, small_pair):
        x, y, cx, cy = small_pair
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            contract(
                x, y, cx, cy, method="sparta",
                swap_larger_to_y=False, x_format="bogus",
            )

    def test_dense_cutoff(self, small_pair):
        x, y, cx, cy = small_pair
        res = contract(x, y, cx, cy, method="dense", cutoff=1e6)
        assert res.nnz == 0


class TestOutputProperties:
    def test_output_sorted_by_default(self, small_pair):
        x, y, cx, cy = small_pair
        for method in SPARSE_ENGINES:
            res = contract(x, y, cx, cy, method=method)
            assert res.tensor.is_sorted(), method

    def test_output_has_no_duplicate_coordinates(self, small_pair):
        x, y, cx, cy = small_pair
        for method in SPARSE_ENGINES:
            res = contract(x, y, cx, cy, method=method)
            assert res.tensor.coalesce().nnz == res.nnz, method

    def test_nnz_counter_matches(self, small_pair):
        x, y, cx, cy = small_pair
        res = contract(x, y, cx, cy, method="sparta")
        assert res.profile.counters["nnz_z"] == res.nnz
