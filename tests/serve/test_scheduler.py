"""Fair scheduler: weighted sharing, admission control, batching."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServeError, ServiceOverloadedError
from repro.serve import FairScheduler, TenantQuota


def drain_order(sched, n):
    out = []
    for _ in range(n):
        batch = sched.pop_batch(timeout=0.1)
        assert batch, "queue drained early"
        out.extend(batch)
    return out


def test_quota_validation():
    with pytest.raises(ServeError):
        TenantQuota(weight=0.0)
    with pytest.raises(ServeError):
        TenantQuota(max_queue_depth=0)


def test_fifo_within_one_tenant():
    s = FairScheduler()
    for i in range(5):
        s.submit(i, tenant="a")
    assert [item for _, item in drain_order(s, 5)] == [0, 1, 2, 3, 4]


def test_weighted_fair_sharing_under_contention():
    s = FairScheduler(max_queue_depth=100)
    s.register("heavy", TenantQuota(weight=3.0, max_queue_depth=50))
    s.register("light", TenantQuota(weight=1.0, max_queue_depth=50))
    for i in range(12):
        s.submit(("heavy", i), tenant="heavy")
        s.submit(("light", i), tenant="light")
    first8 = [t for t, _ in drain_order(s, 8)]
    # a weight-3 tenant gets ~3 of every 4 dispatches under contention
    assert first8.count("heavy") == 6
    assert first8.count("light") == 2


def test_idle_tenant_banks_no_credit():
    s = FairScheduler(max_queue_depth=100)
    # tenant b sits idle while a consumes 10 dispatches...
    for i in range(10):
        s.submit(i, tenant="a")
    drain_order(s, 10)
    # ...then both queue again: b must not burst ahead 10 deep
    for i in range(4):
        s.submit(("a", i), tenant="a")
        s.submit(("b", i), tenant="b")
    first4 = [t for t, _ in drain_order(s, 4)]
    assert first4.count("a") == 2 and first4.count("b") == 2


def test_global_depth_bound_backpressure():
    s = FairScheduler(max_queue_depth=3)
    for i in range(3):
        s.submit(i, tenant="a")
    with pytest.raises(ServiceOverloadedError) as exc:
        s.submit(99, tenant="b", retry_after=0.75)
    assert exc.value.retry_after == 0.75
    assert exc.value.tenant == "b"
    assert s.rejected["b"] == 1


def test_tenant_depth_bound_does_not_starve_others():
    s = FairScheduler(max_queue_depth=100)
    s.register("noisy", TenantQuota(max_queue_depth=2))
    s.submit(0, tenant="noisy")
    s.submit(1, tenant="noisy")
    with pytest.raises(ServiceOverloadedError):
        s.submit(2, tenant="noisy")
    # the flood is contained: another tenant still gets in
    s.submit("fine", tenant="quiet")
    assert s.depth("quiet") == 1
    assert s.depth() == 3


def test_pop_batch_groups_same_key_across_tenants():
    s = FairScheduler(max_queue_depth=100)
    for i in range(3):
        s.submit(("k1", "a", i), tenant="a")
        s.submit(("k2", "b", i), tenant="b")
    batch = s.pop_batch(key=lambda it: it[0], max_batch=8,
                        timeout=0.1)
    # the head's key collects all three k-matching items, skipping the
    # interleaved other-key requests
    keys = {item[0] for _, item in batch}
    assert len(batch) == 3 and len(keys) == 1
    assert s.depth() == 3


def test_pop_batch_respects_max_batch_and_none_key():
    s = FairScheduler(max_queue_depth=100)
    for i in range(6):
        s.submit(("same", i), tenant="a")
    batch = s.pop_batch(key=lambda it: it[0], max_batch=4,
                        timeout=0.1)
    assert len(batch) == 4
    # a None key means "never batch me"
    s2 = FairScheduler()
    s2.submit(1, tenant="a")
    s2.submit(2, tenant="a")
    assert len(s2.pop_batch(key=lambda it: None, max_batch=8,
                            timeout=0.1)) == 1


def test_batched_items_charged_to_their_tenants():
    s = FairScheduler(max_queue_depth=100)
    s.register("a", TenantQuota(weight=1.0, max_queue_depth=50))
    s.register("b", TenantQuota(weight=1.0, max_queue_depth=50))
    # one batchable item from a, three from b, then distinct work
    s.submit(("k", "a"), tenant="a")
    for i in range(3):
        s.submit(("k", f"b{i}"), tenant="b")
    batch = s.pop_batch(key=lambda it: it[0], max_batch=8,
                        timeout=0.1)
    assert len(batch) == 4
    # b consumed 3 units to a's 1 — next contention must favor a
    s.submit(("x", "a2"), tenant="a")
    s.submit(("y", "b4"), tenant="b")
    tenant, _ = s.pop_batch(timeout=0.1)[0]
    assert tenant == "a"


def test_pop_batch_timeout_and_close():
    s = FairScheduler()
    assert s.pop_batch(timeout=0.05) == []
    s.submit(1, tenant="a")
    s.close()
    with pytest.raises(ServeError):
        s.submit(2, tenant="a")
    # closed but not drained: queued work still pops
    assert len(s.pop_batch(timeout=0.1)) == 1
    assert s.pop_batch(timeout=0.1) == []


def test_blocked_pop_wakes_on_submit():
    s = FairScheduler()
    got = []

    def popper():
        got.extend(s.pop_batch(timeout=5.0))

    t = threading.Thread(target=popper)
    t.start()
    s.submit("wake", tenant="a")
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert [item for _, item in got] == ["wake"]


def test_drain_returns_everything():
    s = FairScheduler()
    for i in range(4):
        s.submit(i, tenant=f"t{i % 2}")
    drained = s.drain()
    assert sorted(item for _, item in drained) == [0, 1, 2, 3]
    assert s.depth() == 0
