"""Cross-request traffic telemetry: the serve-side TrafficFeed."""

from __future__ import annotations

from repro.serve import (
    ServeClient,
    ServeConfig,
    SpTCServer,
    TrafficEvent,
    TrafficFeed,
)


class TestTrafficFeed:
    def test_publish_and_drain_fifo(self):
        feed = TrafficFeed()
        feed.publish("alpha", "p1")
        feed.publish("beta", "p2")
        assert len(feed) == 2
        events = feed.drain()
        assert [e.tenant for e in events] == ["alpha", "beta"]
        assert [e.profile for e in events] == ["p1", "p2"]
        assert isinstance(events[0], TrafficEvent)
        assert len(feed) == 0
        assert feed.drain() == ()

    def test_bounded_drops_oldest(self):
        feed = TrafficFeed(maxlen=3)
        for i in range(5):
            feed.publish("t", i)
        assert feed.dropped == 2
        assert feed.published == 5
        assert [e.profile for e in feed.drain()] == [2, 3, 4]

    def test_server_publishes_profiles(self, pair):
        x, y, cx, cy = pair
        feed = TrafficFeed()
        server = SpTCServer(
            ServeConfig(
                workers=1, execution="inline", traffic_feed=feed
            )
        )
        try:
            server.start()
            client = ServeClient(server)
            client.submit(x, y, cx, cy, tenant="alpha")
            client.submit(x, y, cx, cy, tenant="beta")
        finally:
            server.close()
        events = feed.drain()
        assert [e.tenant for e in events] == ["alpha", "beta"]
        for event in events:
            assert event.profile.stage_seconds  # a real RunProfile

    def test_feed_drives_migration_engine(self, pair):
        # End-to-end: serve telemetry is consumable hotness history
        # for the past-window placement policies.
        from repro.memory import MigrationEngine, dram, pmm
        from repro.memory.devices import HeterogeneousMemory

        x, y, cx, cy = pair
        feed = TrafficFeed()
        server = SpTCServer(
            ServeConfig(
                workers=1, execution="inline", traffic_feed=feed
            )
        )
        try:
            server.start()
            ServeClient(server).submit(x, y, cx, cy)
        finally:
            server.close()
        hm = HeterogeneousMemory(dram=dram(1 << 20), pmm=pmm(1 << 26))
        engine = MigrationEngine(hm, policy="ewma")
        assert engine.consume(feed) == 1
        assert engine.counters["observed_profiles"] == 1
        assert engine._ewma
