"""Serve-suite fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import random_tensor


@pytest.fixture(autouse=True)
def _planner_off(monkeypatch):
    """Pin the planner environment default for deterministic routing.

    Serve tests compare served results against direct ``contract()``
    calls with the *same* options; pinning ``REPRO_PLANNER=off`` keeps
    any engine-internal planner consultation identical on both sides
    regardless of the developer's environment. Requests that want the
    planner opt back in with ``options={"plan": "auto"}``.
    """
    monkeypatch.setenv("REPRO_PLANNER", "off")


@pytest.fixture
def pair():
    """A modest contraction pair shared across serve tests."""
    x = random_tensor((8, 7, 5, 4), 160, seed=211)
    y = random_tensor((5, 4, 9), 90, seed=212)
    return x, y, (2, 3), (0, 1)


def assert_tensors_bit_identical(z, ref, label: str) -> None:
    assert tuple(z.shape) == tuple(ref.shape), label
    np.testing.assert_array_equal(
        z.indices, ref.indices, err_msg=f"{label}: index mismatch"
    )
    np.testing.assert_array_equal(
        z.values, ref.values, err_msg=f"{label}: value bytes differ"
    )
