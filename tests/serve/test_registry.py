"""Operand registry: pinning, refcounts, eviction, tenant shares."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import (
    ServeError,
    ServiceOverloadedError,
    UnknownHandleError,
)
from repro.ooc import MemoryBudget
from repro.serve import OperandRegistry
from repro.serve.registry import REGISTRY_SHM_PREFIX, attach_pinned
from repro.tensor import random_tensor

from .conftest import assert_tensors_bit_identical


def live_registry_segments():
    try:
        names = os.listdir("/dev/shm")
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return None
    return {n for n in names if n.startswith(REGISTRY_SHM_PREFIX)}


def test_pin_get_roundtrip_zero_copy(shm_leak_check):
    t = random_tensor((6, 5, 4), 50, seed=1)
    with OperandRegistry() as reg:
        reg.pin("a", t)
        view = reg.get("a")
        assert_tensors_bit_identical(view, t, "pinned view")
        assert view.fingerprint() == t.fingerprint()
        # same shared view object on repeated lookups — no copies
        assert reg.get("a") is view
        assert "a" in reg and len(reg) == 1


def test_worker_ref_attaches_same_bytes(shm_leak_check):
    t = random_tensor((6, 5, 4), 50, seed=2)
    with OperandRegistry() as reg:
        reg.pin("a", t)
        entry = reg.acquire("a")
        blocks = []
        try:
            attached = attach_pinned(entry.worker_ref(), blocks)
            assert_tensors_bit_identical(attached, t, "shm attach")
            assert attached.fingerprint() == t.fingerprint()
        finally:
            del attached
            for b in blocks:
                b.close()
            reg.release("a")


def test_unknown_handle_raises(shm_leak_check):
    with OperandRegistry() as reg:
        with pytest.raises(UnknownHandleError):
            reg.get("never-pinned")
        with pytest.raises(UnknownHandleError):
            reg.acquire("never-pinned")


def test_repin_identical_is_noop_different_replaces(shm_leak_check):
    t1 = random_tensor((6, 5, 4), 50, seed=3)
    t2 = random_tensor((6, 5, 4), 50, seed=4)
    with OperandRegistry() as reg:
        reg.pin("a", t1)
        reg.pin("a", t1)  # identical content: refresh, not duplicate
        assert len(reg) == 1
        assert reg.repin_count == 1
        reg.pin("a", t2)  # unreferenced: replaced in place
        assert_tensors_bit_identical(reg.get("a"), t2, "replaced pin")


def test_repin_different_content_refused_while_acquired(shm_leak_check):
    t1 = random_tensor((6, 5, 4), 50, seed=5)
    t2 = random_tensor((6, 5, 4), 50, seed=6)
    with OperandRegistry() as reg:
        reg.pin("a", t1)
        reg.acquire("a")
        with pytest.raises(ServeError, match="in use"):
            reg.pin("a", t2)
        reg.release("a")
        reg.pin("a", t2)  # released: replacement allowed


def test_unpin_refcount_protocol(shm_leak_check):
    t = random_tensor((6, 5, 4), 50, seed=7)
    with OperandRegistry() as reg:
        reg.pin("a", t)
        reg.acquire("a")
        with pytest.raises(ServeError, match="in-flight"):
            reg.unpin("a")
        assert "a" in reg  # refused unpin leaves the pin intact
        reg.release("a")
        reg.unpin("a")
        assert "a" not in reg
        with pytest.raises(UnknownHandleError):
            reg.unpin("a")


def test_lru_eviction_under_budget_pressure(shm_leak_check):
    tensors = [random_tensor((8, 8, 8), 120, seed=10 + i)
               for i in range(4)]
    per = tensors[0].nbytes
    # room for roughly two pins at a time
    with OperandRegistry(MemoryBudget(int(per * 2.5))) as reg:
        reg.pin("t0", tensors[0])
        reg.pin("t1", tensors[1])
        reg.get("t0")  # touch t0 so t1 is the LRU victim
        reg.pin("t2", tensors[2])
        assert "t1" not in reg
        assert "t0" in reg and "t2" in reg
        assert reg.eviction_count == 1
        # evicted handles resolve to UnknownHandleError, not garbage
        with pytest.raises(UnknownHandleError):
            reg.get("t1")


def test_acquired_pins_never_evicted(shm_leak_check):
    tensors = [random_tensor((8, 8, 8), 120, seed=20 + i)
               for i in range(3)]
    per = tensors[0].nbytes
    with OperandRegistry(MemoryBudget(int(per * 2.5))) as reg:
        reg.pin("t0", tensors[0])
        reg.pin("t1", tensors[1])
        reg.acquire("t0")
        reg.acquire("t1")
        # nothing evictable: backpressure, not eviction of live pins
        with pytest.raises(ServiceOverloadedError, match="in use"):
            reg.pin("t2", tensors[2])
        assert "t0" in reg and "t1" in reg
        reg.release("t0")
        reg.pin("t2", tensors[2])  # t0 released: now evictable
        assert "t0" not in reg and "t1" in reg


def test_tenant_share_bounds_only_that_tenant(shm_leak_check):
    t = random_tensor((8, 8, 8), 120, seed=30)
    per = t.nbytes
    budget = MemoryBudget(per * 10)
    shares = budget.subdivide({"small": per * 1.5 / (per * 10)},
                              floor=1)
    with OperandRegistry(budget, tenant_budgets=shares) as reg:
        reg.pin("a", t, tenant="small")
        with pytest.raises(ServiceOverloadedError) as exc:
            reg.pin("b", random_tensor((8, 8, 8), 120, seed=31),
                    tenant="small")
        assert exc.value.tenant == "small"
        # an uncapped tenant is untouched by the exhausted share
        reg.pin("c", random_tensor((8, 8, 8), 120, seed=32),
                tenant="big")
        assert "c" in reg


def test_close_unlinks_everything_even_with_refcounts(shm_leak_check):
    before = live_registry_segments()
    reg = OperandRegistry()
    reg.pin("a", random_tensor((6, 5, 4), 50, seed=40))
    reg.pin("b", random_tensor((6, 5, 4), 50, seed=41))
    reg.acquire("a")  # a crashed client never released this
    if before is not None:
        assert len(live_registry_segments() - before) == 4
    reg.close()
    reg.close()  # idempotent
    if before is not None:
        assert live_registry_segments() <= before
    assert len(reg) == 0


def test_counters_snapshot(shm_leak_check):
    with OperandRegistry(MemoryBudget("64M")) as reg:
        t = random_tensor((6, 5, 4), 50, seed=50)
        reg.pin("a", t)
        reg.get("a")
        reg.unpin("a")
        c = reg.counters()
        assert c["pins"] == 1 and c["unpins"] == 1
        assert c["lookups"] == 1 and c["pinned"] == 0
        assert c["budget_cap_bytes"] == 64 * 1024 * 1024


def test_values_survive_shm_roundtrip_bit_exact(shm_leak_check):
    # float64 payloads must cross the segment copy untouched
    t = random_tensor((5, 5, 5), 60, seed=60)
    with OperandRegistry() as reg:
        reg.pin("a", t)
        view = reg.get("a")
        assert view.values.dtype == t.values.dtype
        assert np.array_equal(
            view.values.view(np.uint64), t.values.view(np.uint64)
        )
