"""Serve integration suite."""
