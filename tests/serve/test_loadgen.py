"""Load generator: determinism, verification, concurrency ladder."""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve import (
    LoadGenerator,
    LoadSpec,
    ServeClient,
    ServeConfig,
    SpTCServer,
)
from repro.serve.loadgen import build_mix

SPEC = LoadSpec(
    seed=7,
    requests=10,
    datasets=("uber", "nips"),
    n_modes=3,
    scale=0.01,
    tenants=("alpha", "beta"),
    distinct_cases=2,
)


@pytest.fixture(scope="module")
def server():
    srv = SpTCServer(ServeConfig(workers=2, execution="inline"))
    srv.start()
    yield srv
    srv.close()


def test_mix_is_deterministic():
    assert build_mix(SPEC) == build_mix(SPEC)
    other = LoadSpec(seed=8, requests=10, distinct_cases=2)
    assert build_mix(other) != build_mix(SPEC)
    mix = build_mix(SPEC)
    assert len(mix) == SPEC.requests
    assert {r.tenant for r in mix} <= set(SPEC.tenants)
    assert {r.case_index for r in mix} <= set(
        range(SPEC.distinct_cases)
    )


def test_generator_builds_identical_cases_per_spec():
    g1 = LoadGenerator(client=None, spec=SPEC)
    g2 = LoadGenerator(client=None, spec=SPEC)
    for c1, c2 in zip(g1.cases, g2.cases):
        assert c1.x.fingerprint() == c2.x.fingerprint()
        assert c1.y.fingerprint() == c2.y.fingerprint()


def test_served_mix_verifies_bit_exact(server, shm_leak_check):
    gen = LoadGenerator(ServeClient(server), spec=SPEC)
    gen.pin_all()
    try:
        report = gen.run(concurrency=1)
        assert report.completed == SPEC.requests
        assert report.failed == 0 and not report.errors
        assert gen.verify(report) == SPEC.requests
    finally:
        gen.unpin_all()


def test_concurrent_run_completes_and_verifies(server, shm_leak_check):
    gen = LoadGenerator(ServeClient(server), spec=SPEC)
    gen.pin_all()
    try:
        report = gen.run(concurrency=4)
        assert report.completed == SPEC.requests
        assert report.failed == 0, report.errors
        assert gen.verify(report) == SPEC.requests
        summary = report.summary()
        assert summary["p50_ms"] > 0
        assert summary["p99_ms"] >= summary["p50_ms"]
        assert summary["rps"] > 0
    finally:
        gen.unpin_all()


def test_overload_is_retried_not_failed(shm_leak_check):
    # a one-deep queue forces backpressure; the generator must absorb
    # every rejection via retry-after and still complete the mix
    srv = SpTCServer(
        ServeConfig(workers=1, execution="inline", max_queue_depth=1)
    )
    srv.start()
    try:
        gen = LoadGenerator(ServeClient(srv), spec=SPEC)
        gen.pin_all()
        report = gen.run(concurrency=4)
        assert report.completed == SPEC.requests
        assert report.failed == 0, report.errors
        assert report.overload_retries > 0
        assert gen.verify(report) == SPEC.requests
    finally:
        srv.close()


def test_verify_catches_tampering(server):
    gen = LoadGenerator(ServeClient(server), spec=SPEC)
    gen.pin_all()
    try:
        report = gen.run(concurrency=1)
        _, resp = report.results[0]
        resp.tensor.values[...] = 0.0  # simulate a wrong answer
        with pytest.raises(ServeError, match="differs"):
            gen.verify(report)
    finally:
        gen.unpin_all()
