"""Chaos suite: tenant isolation under injected worker failures.

Every fault here rides a *per-request* plan, so the blast radius the
server promises — one request, one slot — is exactly what these tests
measure: the targeted tenant's request recovers or degrades alone,
while a concurrent tenant's traffic stays bit-identical, un-retried
and un-degraded on a pool that never restarts.
"""

from __future__ import annotations

import pytest

from repro.core import contract
from repro.errors import ServiceOverloadedError
from repro.faults import ANY, FaultPlan, FaultSpec
from repro.serve import ServeConfig, SpTCServer, TenantQuota
from repro.tensor import random_tensor

from .conftest import assert_tensors_bit_identical

pytestmark = pytest.mark.faults


def kill_plan(worker=ANY, stage="index_search"):
    return FaultPlan((FaultSpec("kill", worker=worker, stage=stage),))


def submit_mixed(server, pair, *, chaos_plan, victims=1, bystanders=4):
    """Fire faulted alpha traffic alongside clean beta traffic."""
    x, y, cx, cy = pair
    chaos = [
        server.submit(x, y, cx, cy, tenant="alpha",
                      fault_plan=chaos_plan)
        for _ in range(victims)
    ]
    clean = [
        server.submit(x, y, cx, cy, tenant="beta")
        for _ in range(bystanders)
    ]
    return chaos, clean


def test_pinned_kill_respawns_and_retries_cleanly(pair, shm_leak_check):
    x, y, cx, cy = pair
    ref = contract(x, y, cx, cy)
    with SpTCServer(ServeConfig(workers=1)) as server:
        # worker id 0 dies once; the respawn gets a fresh id the
        # pinned spec can never match again, so the retry is clean
        resp = server.submit_and_wait(
            x, y, cx, cy, tenant="alpha",
            fault_plan=kill_plan(worker=0), timeout=60.0,
        )
        assert resp.retries == 1 and not resp.degraded
        assert_tensors_bit_identical(resp.tensor, ref.tensor,
                                     "post-respawn retry")
        follow = server.submit_and_wait(
            x, y, cx, cy, tenant="beta", timeout=60.0
        )
        assert follow.retries == 0 and not follow.degraded
        snap = server.metrics().as_dict()
        assert snap["serve.pool.respawns"] == 1
        assert snap["serve.pool.serial_fallbacks"] == 0


def test_any_kill_degrades_only_the_targeted_tenant(pair,
                                                    shm_leak_check):
    x, y, cx, cy = pair
    ref = contract(x, y, cx, cy)
    cfg = ServeConfig(workers=2, max_retries=1, on_failure="serial")
    with SpTCServer(cfg) as server:
        chaos, clean = submit_mixed(
            server, pair, chaos_plan=kill_plan(worker=ANY)
        )
        victim = chaos[0].result(timeout=60.0)
        # every retry died too, so the parent recomputed it serially:
        # degraded, but byte-for-byte the same answer
        assert victim.degraded
        assert victim.retries == cfg.max_retries + 1
        assert victim.profile.flags["serve_degraded"] == "serial"
        assert_tensors_bit_identical(victim.tensor, ref.tensor,
                                     "serial fallback")
        for pending in clean:
            resp = pending.result(timeout=60.0)
            assert resp.tenant == "beta"
            assert resp.retries == 0 and not resp.degraded
            assert_tensors_bit_identical(resp.tensor, ref.tensor,
                                         "bystander")
        snap = server.metrics().as_dict()
        # only the victim's slot churned — two deaths, two respawns
        assert snap["serve.pool.respawns"] == 2
        assert snap["serve.pool.serial_fallbacks"] == 1
        assert snap["serve.beta.degraded"] == 0
        assert snap["serve.beta.retries"] == 0
        assert snap["serve.alpha.degraded"] == 1


def test_corruption_never_reaches_any_tenant(pair, shm_leak_check):
    x, y, cx, cy = pair
    ref = contract(x, y, cx, cy)
    plan = FaultPlan(
        (FaultSpec("corrupt", worker=0, stage="accumulation"),)
    )
    with SpTCServer(ServeConfig(workers=1)) as server:
        chaos, clean = submit_mixed(server, pair, chaos_plan=plan,
                                    bystanders=2)
        victim = chaos[0].result(timeout=60.0)
        # the digest check catches the tampered payload in the parent,
        # kills the liar and retries on a fresh worker
        assert victim.retries == 1 and not victim.degraded
        assert_tensors_bit_identical(victim.tensor, ref.tensor,
                                     "post-corruption retry")
        for pending in clean:
            resp = pending.result(timeout=60.0)
            assert resp.retries == 0 and not resp.degraded
            assert_tensors_bit_identical(resp.tensor, ref.tensor,
                                         "bystander")
        assert server.metrics().as_dict()["serve.pool.respawns"] == 1


def test_post_shipment_death_costs_the_next_request_nothing(
    pair, shm_leak_check
):
    x, y, cx, cy = pair
    ref = contract(x, y, cx, cy)
    with SpTCServer(ServeConfig(workers=1)) as server:
        # the worker ships the reply, then dies: the faulted request
        # itself is whole and unretried...
        first = server.submit_and_wait(
            x, y, cx, cy, tenant="alpha",
            fault_plan=kill_plan(worker=0, stage="writeback"),
            timeout=60.0,
        )
        assert first.retries == 0 and not first.degraded
        assert_tensors_bit_identical(first.tensor, ref.tensor,
                                     "pre-death reply")
        # ...and the next request finds the corpse, respawns, and
        # completes cleanly
        second = server.submit_and_wait(
            x, y, cx, cy, tenant="beta", timeout=60.0
        )
        assert second.retries == 1 and not second.degraded
        assert_tensors_bit_identical(second.tensor, ref.tensor,
                                     "post-death retry")


def test_budget_share_exhaustion_backpressures_one_tenant(
    shm_leak_check,
):
    tensors = [random_tensor((32, 32, 32), 4000, seed=70 + i)
               for i in range(4)]
    per = tensors[0].nbytes
    cfg = ServeConfig(
        workers=1,
        execution="inline",
        memory_budget=per * 10,
        quotas={"greedy": TenantQuota(memory_fraction=0.15)},
    )
    with SpTCServer(cfg) as server:
        server.pin("g0", tensors[0], tenant="greedy")
        with pytest.raises(ServiceOverloadedError) as exc:
            server.pin("g1", tensors[1], tenant="greedy")
        assert exc.value.tenant == "greedy"
        # the calm tenant is untouched by greedy's exhausted share —
        # it can still pin and contract
        server.pin("c0", tensors[2], tenant="calm")
        server.pin("c1", tensors[3], tenant="calm")
        resp = server.submit_and_wait(
            "c0", "c1", (2,), (0,), tenant="calm", timeout=60.0
        )
        ref = contract(tensors[2], tensors[3], (2,), (0,))
        assert_tensors_bit_identical(resp.tensor, ref.tensor,
                                     "calm tenant under pressure")
        # greedy's existing pin still serves
        resp = server.submit_and_wait(
            "g0", "c1", (2,), (0,), tenant="greedy", timeout=60.0
        )
        ref = contract(tensors[0], tensors[3], (2,), (0,))
        assert_tensors_bit_identical(resp.tensor, ref.tensor,
                                     "greedy within share")
