"""SpTCServer integration: exactness, batching, tracing, back ends."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import contract
from repro.errors import (
    ServeError,
    ServiceOverloadedError,
    UnknownHandleError,
)
from repro.serve import (
    ServeClient,
    ServeConfig,
    SpTCServer,
    TcpServeServer,
    TenantQuota,
    parse_serve_url,
    traffic_cells,
)
from repro.tensor import random_tensor

from .conftest import assert_tensors_bit_identical


@pytest.fixture(scope="module")
def worker_server():
    """One persistent two-worker server shared by this module."""
    server = SpTCServer(ServeConfig(workers=2, execution="worker"))
    server.start()
    yield server
    server.close()


class TestExactness:
    def test_served_bit_identical_and_traffic_exact(
        self, worker_server, pair
    ):
        x, y, cx, cy = pair
        client = ServeClient(worker_server)
        client.pin("ex-x", x)
        client.pin("ex-y", y)
        direct = contract(x, y, cx, cy)
        resp = client.submit("ex-x", "ex-y", cx, cy)
        assert_tensors_bit_identical(
            resp.tensor, direct.tensor, "served vs direct"
        )
        assert traffic_cells(resp.profile) == traffic_cells(
            direct.profile
        ), "served Table-2 traffic differs from direct contract()"
        client.unpin("ex-x")
        client.unpin("ex-y")

    def test_inline_operands_without_pinning(self, worker_server, pair):
        x, y, cx, cy = pair
        direct = contract(x, y, cx, cy)
        resp = ServeClient(worker_server).submit(x, y, cx, cy)
        assert_tensors_bit_identical(
            resp.tensor, direct.tensor, "inline operands"
        )

    def test_option_passthrough_is_exact(self, worker_server, pair):
        x, y, cx, cy = pair
        client = ServeClient(worker_server)
        client.pin("op-x", x)
        client.pin("op-y", y)
        for options in (
            {"method": "spa"},
            {"method": "coo_hta"},
            {"method": "parallel", "threads": 2, "backend": "thread",
             "planner": "off"},
            {"sort_output": False},
        ):
            direct = contract(x, y, cx, cy, **options)
            resp = client.submit(
                "op-x", "op-y", cx, cy, options=options
            )
            assert_tensors_bit_identical(
                resp.tensor, direct.tensor, f"options={options}"
            )
            assert traffic_cells(resp.profile) == traffic_cells(
                direct.profile
            ), f"options={options}: traffic cells differ"
        client.unpin("op-x")
        client.unpin("op-y")

    def test_plan_auto_served(self, worker_server, pair):
        x, y, cx, cy = pair
        direct = contract(x, y, cx, cy, plan="auto", max_workers=2)
        resp = ServeClient(worker_server).submit(
            x, y, cx, cy,
            options={"plan": "auto", "max_workers": 2},
        )
        assert_tensors_bit_identical(
            resp.tensor, direct.tensor, "plan=auto"
        )
        assert resp.profile.flags["planner"].startswith("auto:")


class TestBatching:
    def test_same_signature_requests_ride_one_batch(self, pair):
        x, y, cx, cy = pair
        server = SpTCServer(
            ServeConfig(workers=2, execution="inline", max_batch=8)
        )
        try:
            client = ServeClient(server)
            client.pin("b-x", x)
            client.pin("b-y", y)
            # queue before the dispatchers exist: one deterministic pop
            pendings = [
                client.submit_nowait("b-x", "b-y", cx, cy)
                for _ in range(4)
            ]
            server.start()
            responses = [p.result(timeout=60) for p in pendings]
            assert len({r.batch_id for r in responses}) == 1
            assert server.batches == 1
            assert server.batched_requests == 4
        finally:
            server.close()

    def test_incompatible_requests_do_not_batch(self, pair):
        x, y, cx, cy = pair
        server = SpTCServer(
            ServeConfig(workers=1, execution="inline", max_batch=8)
        )
        try:
            client = ServeClient(server)
            client.pin("i-x", x)
            client.pin("i-y", y)
            p1 = client.submit_nowait("i-x", "i-y", cx, cy)
            p2 = client.submit_nowait(
                "i-x", "i-y", cx, cy, options={"method": "spa"}
            )
            server.start()
            r1, r2 = p1.result(60), p2.result(60)
            assert r1.batch_id != r2.batch_id
        finally:
            server.close()

    def test_warm_worker_hty_cache_hits_across_batch(self, pair):
        x, y, cx, cy = pair
        # fresh server: the first request must miss, followers must hit
        # the worker-resident HtY cache (the opt-in warm path)
        server = SpTCServer(ServeConfig(workers=1, execution="worker"))
        try:
            server.start()
            client = ServeClient(server)
            client.pin("w-x", x)
            client.pin("w-y", y)
            opts = {"use_hty_cache": True}
            first = client.submit("w-x", "w-y", cx, cy, options=opts)
            second = client.submit("w-x", "w-y", cx, cy, options=opts)
            direct = contract(x, y, cx, cy)
            for label, resp in (("first", first), ("second", second)):
                assert_tensors_bit_identical(
                    resp.tensor, direct.tensor, label
                )
            assert first.profile.counters.get("hty_cache_hits", 0) == 0
            assert (
                second.profile.counters.get("hty_cache_hits", 0) >= 1
            ), "warm worker did not hit its HtY cache"
        finally:
            server.close()


class TestAdmissionAndErrors:
    def test_unknown_option_rejected_at_submit(self, worker_server):
        with pytest.raises(ServeError, match="unknown request option"):
            ServeClient(worker_server).submit_nowait(
                random_tensor((3, 3), 4, seed=1),
                random_tensor((3, 3), 4, seed=2),
                (1,), (0,), options={"granularity": "element"},
            )

    def test_unknown_handle_fails_fast(self, worker_server):
        with pytest.raises(UnknownHandleError):
            ServeClient(worker_server).submit_nowait(
                "no-such-handle",
                random_tensor((3, 3), 4, seed=3),
                (1,), (0,),
            )

    def test_queue_depth_backpressure(self, pair):
        x, y, cx, cy = pair
        server = SpTCServer(
            ServeConfig(workers=1, execution="inline",
                        max_queue_depth=2)
        )
        # never started: the queue only fills
        try:
            client = ServeClient(server)
            client.pin("q-x", x)
            client.pin("q-y", y)
            client.submit_nowait("q-x", "q-y", cx, cy)
            client.submit_nowait("q-x", "q-y", cx, cy)
            with pytest.raises(ServiceOverloadedError) as exc:
                client.submit_nowait("q-x", "q-y", cx, cy)
            assert exc.value.retry_after > 0
            m = client.metrics()
            assert m["serve.default.rejected"] == 1
        finally:
            server.close()

    def test_tenant_quota_bounds_queue(self, pair):
        x, y, cx, cy = pair
        server = SpTCServer(
            ServeConfig(
                workers=1, execution="inline",
                quotas={"limited": TenantQuota(max_queue_depth=1)},
            )
        )
        try:
            client = ServeClient(server)
            client.pin("t-x", x, tenant="limited")
            client.pin("t-y", y, tenant="limited")
            client.submit_nowait(
                "t-x", "t-y", cx, cy, tenant="limited"
            )
            with pytest.raises(ServiceOverloadedError):
                client.submit_nowait(
                    "t-x", "t-y", cx, cy, tenant="limited"
                )
            # the other tenant is unaffected by the flood
            client.submit_nowait("t-x", "t-y", cx, cy, tenant="calm")
        finally:
            server.close()

    def test_deterministic_worker_error_fails_only_request(
        self, worker_server, pair
    ):
        x, y, cx, cy = pair
        client = ServeClient(worker_server)
        # contract modes out of range: deterministic ShapeError in the
        # worker, reported as WorkerCrashError without burning it
        from repro.errors import WorkerCrashError

        with pytest.raises(WorkerCrashError, match="mode 9"):
            client.submit(x, y, (9,), (0,), timeout=60)
        # the pool still serves
        direct = contract(x, y, cx, cy)
        resp = client.submit(x, y, cx, cy)
        assert_tensors_bit_identical(
            resp.tensor, direct.tensor, "after deterministic error"
        )

    def test_close_fails_queued_requests(self, pair):
        x, y, cx, cy = pair
        server = SpTCServer(ServeConfig(workers=1, execution="inline"))
        client = ServeClient(server)
        client.pin("c-x", x)
        client.pin("c-y", y)
        pending = client.submit_nowait("c-x", "c-y", cx, cy)
        server.close()  # never started: the request never dispatched
        with pytest.raises(ServeError, match="shut down"):
            pending.result(timeout=5)
        with pytest.raises(ServeError, match="closed"):
            client.submit_nowait("c-x", "c-y", cx, cy)


class TestObservability:
    def test_request_trace_spans(self, worker_server, pair, tmp_path):
        x, y, cx, cy = pair
        resp = ServeClient(worker_server).submit(
            x, y, cx, cy, trace=True,
            options={"plan": "auto", "max_workers": 2},
        )
        names = {rec.name for rec in resp.records}
        assert {"request", "queue_wait", "plan"} <= names
        root = next(
            rec for rec in resp.records if rec.name == "request"
        )
        assert root.args["trace_id"] == resp.trace_id
        assert root.args["tenant"] == "default"
        out = tmp_path / "trace.json"
        resp.write_trace(out)
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert any(e.get("name") == "request" for e in events)
        assert all(
            e.get("ts", 0) >= 0 for e in events
        ), "trace rebasing produced negative timestamps"

    def test_tracing_off_has_no_records(self, worker_server, pair):
        x, y, cx, cy = pair
        resp = ServeClient(worker_server).submit(
            x, y, cx, cy, trace=False
        )
        assert resp.records == []
        with pytest.raises(ServeError, match="tracing"):
            resp.write_trace("/tmp/never-written.json")

    def test_per_tenant_metrics(self, pair):
        x, y, cx, cy = pair
        server = SpTCServer(ServeConfig(workers=1, execution="inline"))
        try:
            server.start()
            client = ServeClient(server)
            client.pin("m-x", x)
            client.pin("m-y", y)
            for tenant, n in (("alpha", 3), ("beta", 1)):
                for _ in range(n):
                    client.submit(
                        "m-x", "m-y", cx, cy, tenant=tenant
                    )
            m = client.metrics()
            assert m["serve.alpha.requests"] == 3
            assert m["serve.alpha.completed"] == 3
            assert m["serve.beta.completed"] == 1
            assert m["serve.alpha.latency.p50_ms"] > 0
            assert m["serve.pool.workers"] == 1
            assert m["serve.registry.pinned"] == 2
            assert m["serve.queue_depth"] == 0
        finally:
            server.close()

    def test_record_server_duck_typing(self, pair):
        from repro.obs import MetricsRegistry

        x, y, cx, cy = pair
        server = SpTCServer(ServeConfig(workers=1, execution="inline"))
        try:
            server.start()
            ServeClient(server).submit(x, y, cx, cy)
            registry = MetricsRegistry().record_server(server)
            assert registry.get("serve.default.completed") == 1
        finally:
            server.close()


class TestAsyncAndTcp:
    def test_submit_async(self, worker_server, pair):
        x, y, cx, cy = pair

        async def go():
            return await asyncio.gather(
                worker_server.submit_async(x, y, cx, cy),
                worker_server.submit_async(x, y, cx, cy),
            )

        r1, r2 = asyncio.run(go())
        direct = contract(x, y, cx, cy)
        assert_tensors_bit_identical(r1.tensor, direct.tensor, "async1")
        assert_tensors_bit_identical(r2.tensor, direct.tensor, "async2")

    def test_parse_serve_url(self):
        assert parse_serve_url("tcp://127.0.0.1:7077") == (
            "127.0.0.1", 7077
        )
        assert parse_serve_url("localhost:80") == ("localhost", 80)
        with pytest.raises(ServeError):
            parse_serve_url("http://nope")

    def test_tcp_roundtrip_bit_exact(self, pair, shm_leak_check):
        x, y, cx, cy = pair
        direct = contract(x, y, cx, cy)
        front = TcpServeServer(
            SpTCServer(ServeConfig(workers=1, execution="inline"))
        )
        with front:
            client = ServeClient.connect(front.url)
            assert client.ping()
            client.pin("tcp-x", x)
            client.pin("tcp-y", y)
            resp = client.submit("tcp-x", "tcp-y", cx, cy)
            assert_tensors_bit_identical(
                resp.tensor, direct.tensor, "tcp handles"
            )
            assert traffic_cells(resp.profile) == traffic_cells(
                direct.profile
            ), "profile did not survive the wire"
            # inline tensors over the wire: float64 via repr round-trip
            resp2 = client.submit(x, y, cx, cy)
            assert_tensors_bit_identical(
                resp2.tensor, direct.tensor, "tcp inline"
            )
            with pytest.raises(UnknownHandleError):
                client.submit("ghost", "tcp-y", cx, cy)
            m = client.metrics()
            assert m["serve.default.completed"] == 2
            client.close()

    def test_tcp_shutdown_unlinks_segments(self, pair, shm_leak_check):
        x, y, cx, cy = pair
        front = TcpServeServer(
            SpTCServer(ServeConfig(workers=1, execution="inline"))
        )
        front.start()
        client = ServeClient.connect(front.url)
        client.pin("s-x", x)
        client.pin("s-y", y)
        client.close()  # client vanishes without unpinning
        front.stop()  # shutdown must still unlink everything


def test_worker_pool_shutdown_leaks_nothing(pair, shm_leak_check):
    x, y, cx, cy = pair
    server = SpTCServer(ServeConfig(workers=2, execution="worker"))
    with server:
        client = ServeClient(server)
        client.pin("z-x", x)
        client.pin("z-y", y)
        direct = contract(x, y, cx, cy)
        for _ in range(3):
            resp = client.submit("z-x", "z-y", cx, cy)
            assert_tensors_bit_identical(
                resp.tensor, direct.tensor, "pool run"
            )
    # context exit closed workers + registry; shm_leak_check verifies
