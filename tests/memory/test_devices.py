"""Tests for the DRAM/PMM device models (§2.3 constants)."""

import pytest

from repro.core.profile import AccessKind, AccessPattern
from repro.errors import ShapeError
from repro.memory import GB, HeterogeneousMemory, dram, pmm


class TestDevices:
    def test_dram_bandwidths(self):
        d = dram(GB)
        assert d.effective_bandwidth(
            AccessKind.READ, AccessPattern.SEQUENTIAL
        ) == pytest.approx(104 * GB)
        assert d.effective_bandwidth(
            AccessKind.WRITE, AccessPattern.SEQUENTIAL
        ) == pytest.approx(80 * GB)

    def test_pmm_bandwidths(self):
        p = pmm(GB)
        assert p.effective_bandwidth(
            AccessKind.READ, AccessPattern.SEQUENTIAL
        ) == pytest.approx(39 * GB)
        assert p.effective_bandwidth(
            AccessKind.WRITE, AccessPattern.SEQUENTIAL
        ) == pytest.approx(13 * GB)

    def test_pmm_random_penalty_large(self):
        # Observation 2: random hurts a lot on PMM (latency 174 vs 304).
        p = pmm(GB)
        seq = p.effective_bandwidth(
            AccessKind.READ, AccessPattern.SEQUENTIAL
        )
        rand = p.effective_bandwidth(
            AccessKind.READ, AccessPattern.RANDOM
        )
        assert rand / seq == pytest.approx(174 / 304)

    def test_dram_random_penalty_small(self):
        d = dram(GB)
        seq = d.effective_bandwidth(
            AccessKind.READ, AccessPattern.SEQUENTIAL
        )
        rand = d.effective_bandwidth(
            AccessKind.READ, AccessPattern.RANDOM
        )
        assert rand / seq > 0.9

    def test_read_write_asymmetry(self):
        # Observation 1: PMM write bandwidth is ~3x worse than read.
        p = pmm(GB)
        read = p.effective_bandwidth(
            AccessKind.READ, AccessPattern.SEQUENTIAL
        )
        write = p.effective_bandwidth(
            AccessKind.WRITE, AccessPattern.SEQUENTIAL
        )
        assert read / write == pytest.approx(3.0)

    def test_seconds_for(self):
        d = dram(GB)
        assert d.seconds_for(
            104 * GB, AccessKind.READ, AccessPattern.SEQUENTIAL
        ) == pytest.approx(1.0)

    def test_bad_capacity(self):
        with pytest.raises(ShapeError):
            dram(0)
        with pytest.raises(ShapeError):
            pmm(-5)


class TestHeterogeneousMemory:
    def test_paper_machine(self):
        hm = HeterogeneousMemory.paper_machine()
        assert hm.dram.capacity_bytes == 96 * GB
        assert hm.pmm.capacity_bytes == 768 * GB

    def test_scaled(self):
        hm = HeterogeneousMemory.paper_machine(scale=0.5)
        assert hm.dram.capacity_bytes == 48 * GB

    def test_device_lookup(self):
        hm = HeterogeneousMemory.paper_machine()
        assert hm.device("DRAM") is hm.dram
        assert hm.device("PMM") is hm.pmm
        with pytest.raises(ShapeError):
            hm.device("HBM")

    def test_bad_scale(self):
        with pytest.raises(ShapeError):
            HeterogeneousMemory.paper_machine(scale=0)
