"""Tests for static placement policy (§4.2)."""

import pytest

from repro.core.profile import DataObject
from repro.errors import PlacementError
from repro.memory import (
    DRAM,
    PMM,
    all_dram_placement,
    all_pmm_placement,
    single_object_pmm,
    sparta_placement,
)

SIZES = {
    DataObject.HTY: 100,
    DataObject.HTA: 50,
    DataObject.Z_LOCAL: 80,
    DataObject.Z: 200,
}


class TestReferencePlacements:
    def test_all_dram(self):
        p = all_dram_placement()
        assert all(p.device_of(o) == DRAM for o in DataObject)

    def test_all_pmm(self):
        p = all_pmm_placement()
        assert all(p.device_of(o) == PMM for o in DataObject)

    def test_single_object(self):
        p = single_object_pmm(DataObject.HTY)
        assert p.device_of(DataObject.HTY) == PMM
        assert p.device_of(DataObject.X) == DRAM

    def test_objects_on(self):
        p = single_object_pmm(DataObject.Z)
        assert p.objects_on(PMM) == (DataObject.Z,)


class TestSpartaPlacement:
    def test_x_y_always_pmm(self):
        p = sparta_placement(SIZES, dram_capacity=10**9)
        assert p.device_of(DataObject.X) == PMM
        assert p.device_of(DataObject.Y) == PMM

    def test_everything_fits(self):
        p = sparta_placement(SIZES, dram_capacity=10**9)
        for obj in SIZES:
            assert p.device_of(obj) == DRAM

    def test_nothing_fits(self):
        p = sparta_placement(SIZES, dram_capacity=0)
        for obj in SIZES:
            assert p.device_of(obj) == PMM

    def test_priority_order_respected(self):
        # Capacity for HtY only: lower-priority objects go to PMM even
        # if they would fit individually.
        p = sparta_placement(SIZES, dram_capacity=120)
        assert p.device_of(DataObject.HTY) == DRAM
        assert p.device_of(DataObject.HTA) == PMM  # 50 > 120-100
        assert p.device_of(DataObject.Z_LOCAL) == PMM
        assert p.device_of(DataObject.Z) == PMM

    def test_skip_and_fill(self):
        # HtA doesn't fit after HtY, but Z_local does? No: priority is
        # strict; each object is considered in order with what remains.
        p = sparta_placement(SIZES, dram_capacity=190)
        assert p.device_of(DataObject.HTY) == DRAM  # 100, 90 left
        assert p.device_of(DataObject.HTA) == DRAM  # 50, 40 left
        assert p.device_of(DataObject.Z_LOCAL) == PMM  # 80 > 40
        assert p.device_of(DataObject.Z) == PMM  # 200 > 40

    def test_per_thread_objects_scaled(self):
        # With 4 threads, HtA costs 4 x 50 = 200.
        p = sparta_placement(SIZES, dram_capacity=250, threads=4)
        assert p.device_of(DataObject.HTY) == DRAM  # 100, 150 left
        assert p.device_of(DataObject.HTA) == PMM  # 200 > 150

    def test_custom_priority(self):
        p = sparta_placement(
            SIZES,
            dram_capacity=120,
            priority=(
                DataObject.Z,
                DataObject.HTY,
                DataObject.HTA,
                DataObject.Z_LOCAL,
            ),
        )
        assert p.device_of(DataObject.Z) == PMM  # 200 > 120
        assert p.device_of(DataObject.HTY) == DRAM

    def test_missing_estimate_rejected(self):
        with pytest.raises(PlacementError):
            sparta_placement({DataObject.HTY: 10}, dram_capacity=100)

    def test_negative_capacity_rejected(self):
        with pytest.raises(PlacementError):
            sparta_placement(SIZES, dram_capacity=-1)

    def test_bad_threads_rejected(self):
        with pytest.raises(PlacementError):
            sparta_placement(SIZES, dram_capacity=100, threads=0)

    def test_pinned_object_in_priority_rejected(self):
        with pytest.raises(PlacementError):
            sparta_placement(
                SIZES,
                dram_capacity=100,
                priority=(DataObject.X, DataObject.HTY),
            )


class TestPlacementImmutability:
    """Regression: Placement is frozen=True but used to carry a plain
    mutable dict — neither hashable nor actually immutable."""

    def test_hashable_and_equal(self):
        a = all_dram_placement()
        b = all_dram_placement()
        assert hash(a) == hash(b)
        assert a == b
        assert len({a, b}) == 1

    def test_usable_as_cache_key(self):
        cache = {all_pmm_placement(): "slow", all_dram_placement(): "fast"}
        assert cache[all_pmm_placement()] == "slow"

    def test_different_mappings_differ(self):
        assert all_dram_placement() != all_pmm_placement()
        assert single_object_pmm(DataObject.HTY) != single_object_pmm(
            DataObject.HTA
        )

    def test_mapping_rejects_mutation(self):
        placement = all_dram_placement()
        with pytest.raises(TypeError):
            placement.mapping[DataObject.HTY] = PMM

    def test_caller_dict_mutation_does_not_leak(self):
        from repro.memory import Placement

        source = {DataObject.HTY: DRAM}
        placement = Placement("probe", source)
        source[DataObject.HTY] = PMM
        assert placement.device_of(DataObject.HTY) == DRAM

    def test_pickle_roundtrip(self):
        import pickle

        placement = single_object_pmm(DataObject.Z)
        clone = pickle.loads(pickle.dumps(placement))
        assert clone == placement
        assert hash(clone) == hash(placement)
