"""Tests for the placement policies (Sparta static, IAL, references)."""

import pytest

from repro.core import contract
from repro.core.profile import DataObject
from repro.core.stages import STAGE_ORDER, Stage
from repro.memory import (
    DEFAULT_IAL_LAG,
    DRAM,
    PMM,
    HMSimulator,
    all_dram_placement,
    all_pmm_placement,
    characterized_priority,
    dram,
    ial_schedule,
    pmm,
    sparta_policy,
    sparta_policy_characterized,
)
from repro.memory.devices import HeterogeneousMemory
from repro.tensor import random_tensor_fibered


@pytest.fixture(scope="module")
def profile():
    x = random_tensor_fibered((10, 10, 16, 16), 900, 2, 50, seed=95)
    y = random_tensor_fibered((16, 16, 12, 12), 2000, 2, 250, seed=96)
    return contract(
        x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
    ).profile


@pytest.fixture(scope="module")
def sim(profile):
    peak = max(profile.peak_bytes(), 1)
    hm = HeterogeneousMemory(
        dram=dram(max(int(peak * 0.5), 1)), pmm=pmm(peak * 10)
    )
    return HMSimulator(hm)


class TestSpartaPolicy:
    def test_pins_inputs_to_pmm(self, profile, sim):
        p = sparta_policy(profile, sim.hm.dram.capacity_bytes)
        assert p.device_of(DataObject.X) == PMM
        assert p.device_of(DataObject.Y) == PMM

    def test_beats_optane_only(self, profile, sim):
        p = sparta_policy_characterized(
            profile, sim, sim.hm.dram.capacity_bytes
        )
        t_sparta = sim.simulate(profile, p).total_seconds
        t_optane = sim.simulate(
            profile, all_pmm_placement()
        ).total_seconds
        assert t_sparta < t_optane

    def test_never_beats_dram_only(self, profile, sim):
        p = sparta_policy_characterized(
            profile, sim, sim.hm.dram.capacity_bytes
        )
        t_sparta = sim.simulate(profile, p).total_seconds
        t_dram = sim.simulate(
            profile, all_dram_placement()
        ).total_seconds
        assert t_sparta >= t_dram - 1e-12

    def test_characterized_priority_ordering(self, profile, sim):
        prio = characterized_priority(profile, sim)
        assert len(prio) == 4
        assert set(prio) == {
            DataObject.HTY,
            DataObject.HTA,
            DataObject.Z_LOCAL,
            DataObject.Z,
        }
        # The top-priority object must be the one whose PMM placement
        # costs the most.
        from repro.memory import single_object_pmm

        costs = {
            o: sim.simulate(profile, single_object_pmm(o)).total_seconds
            for o in prio
        }
        assert costs[prio[0]] == max(costs.values())

    def test_zero_capacity_degenerates_to_optane(self, profile, sim):
        p = sparta_policy(profile, 0)
        t = sim.simulate(profile, p).total_seconds
        t_optane = sim.simulate(
            profile, all_pmm_placement()
        ).total_seconds
        assert t == pytest.approx(t_optane)


class TestIAL:
    def test_schedule_structure(self, profile, sim):
        sched = ial_schedule(profile, sim.hm.dram.capacity_bytes)
        assert set(sched.per_stage) == set(STAGE_ORDER)

    def test_never_overcommits_dram(self, profile, sim):
        cap = sim.hm.dram.capacity_bytes
        sched = ial_schedule(profile, cap)
        for stage, mapping in sched.per_stage.items():
            resident = sum(
                profile.object_bytes.get(o, 0)
                for o, dev in mapping.items()
                if dev == DRAM
            )
            assert resident <= cap, stage

    def test_migrations_recorded(self, profile, sim):
        sched = ial_schedule(profile, sim.hm.dram.capacity_bytes)
        assert len(sched.migrations) > 0
        for mig in sched.migrations:
            assert mig.src != mig.dst

    def test_worse_than_sparta(self, profile, sim):
        cap = sim.hm.dram.capacity_bytes
        t_sparta = sim.simulate(
            profile,
            sparta_policy_characterized(profile, sim, cap),
        ).total_seconds
        t_ial = sim.simulate_schedule(
            profile,
            ial_schedule(profile, cap),
            lag_fraction=DEFAULT_IAL_LAG,
        ).total_seconds
        assert t_sparta < t_ial

    def test_zero_capacity_never_migrates(self, profile):
        sched = ial_schedule(profile, 0)
        assert sched.migrations == []
        for mapping in sched.per_stage.values():
            assert all(dev == PMM for dev in mapping.values())
