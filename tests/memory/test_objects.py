"""Tests for the Table-2 data (memory.objects)."""

from repro.core.profile import AccessKind, AccessPattern, DataObject
from repro.core.stages import STAGE_ORDER, Stage
from repro.memory.objects import ALWAYS_PMM, PLACEMENT_PRIORITY, TABLE2


class TestTable2Data:
    def test_cells_match_paper(self):
        # Spot-check the paper's table cells.
        assert TABLE2[(DataObject.Y, Stage.INPUT_PROCESSING)] == (
            AccessPattern.SEQUENTIAL,
            frozenset({AccessKind.READ}),
        )
        assert TABLE2[(DataObject.HTY, Stage.INDEX_SEARCH)] == (
            AccessPattern.RANDOM,
            frozenset({AccessKind.READ}),
        )
        assert TABLE2[(DataObject.Z_LOCAL, Stage.ACCUMULATION)] == (
            AccessPattern.SEQUENTIAL,
            frozenset({AccessKind.WRITE}),
        )
        assert TABLE2[(DataObject.Z, Stage.OUTPUT_SORTING)] == (
            AccessPattern.RANDOM,
            frozenset({AccessKind.READ, AccessKind.WRITE}),
        )

    def test_dash_cells_absent(self):
        # The "-" cells of the paper's table must not appear.
        for absent in [
            (DataObject.HTA, Stage.INDEX_SEARCH),
            (DataObject.X, Stage.ACCUMULATION),
            (DataObject.Y, Stage.WRITEBACK),
            (DataObject.Z, Stage.INPUT_PROCESSING),
            (DataObject.HTY, Stage.OUTPUT_SORTING),
        ]:
            assert absent not in TABLE2

    def test_every_stage_touches_something(self):
        for stage in STAGE_ORDER:
            assert any(s == stage for _, s in TABLE2), stage.value

    def test_every_object_appears(self):
        objs = {o for o, _ in TABLE2}
        assert objs == set(DataObject)

    def test_priority_and_pins_partition_objects(self):
        # §4.2: X/Y pinned to PMM; the other four ranked for DRAM.
        assert set(ALWAYS_PMM) == {DataObject.X, DataObject.Y}
        assert set(PLACEMENT_PRIORITY) == (
            set(DataObject) - set(ALWAYS_PMM)
        )
        assert len(PLACEMENT_PRIORITY) == 4

    def test_headline_priority_order(self):
        assert PLACEMENT_PRIORITY == (
            DataObject.HTY,
            DataObject.HTA,
            DataObject.Z_LOCAL,
            DataObject.Z,
        )
