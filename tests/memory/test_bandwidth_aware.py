"""Tests for the bandwidth-aware placement comparator."""

import pytest

from repro.core import contract
from repro.core.profile import DataObject
from repro.errors import PlacementError
from repro.memory import DRAM, PMM, HMSimulator, dram, pmm
from repro.memory.devices import HeterogeneousMemory
from repro.memory.policies import (
    bandwidth_aware_placement,
    sparta_policy_characterized,
)
from repro.tensor import random_tensor_fibered


@pytest.fixture(scope="module")
def profile():
    x = random_tensor_fibered((12, 12, 16, 16), 800, 2, 40, seed=191)
    y = random_tensor_fibered((16, 16, 10, 10), 1800, 2, 200, seed=192)
    return contract(
        x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
    ).profile


class TestBandwidthAware:
    def test_fills_dram_by_density(self, profile):
        p = bandwidth_aware_placement(profile, 10**12)
        # Unlimited DRAM: every sized object lands in DRAM.
        for obj in DataObject:
            if profile.object_bytes.get(obj, 0) > 0:
                assert p.device_of(obj) == DRAM

    def test_zero_capacity_all_pmm(self, profile):
        p = bandwidth_aware_placement(profile, 0)
        assert all(p.device_of(o) == PMM for o in DataObject)

    def test_respects_capacity(self, profile):
        cap = max(profile.object_bytes.values()) // 2
        p = bandwidth_aware_placement(profile, cap)
        resident = sum(
            profile.object_bytes.get(o, 0)
            for o in DataObject
            if p.device_of(o) == DRAM
        )
        assert resident <= cap

    def test_negative_capacity_rejected(self, profile):
        with pytest.raises(PlacementError):
            bandwidth_aware_placement(profile, -1)

    def test_sparta_at_least_as_good(self, profile):
        peak = max(profile.peak_bytes(), 1)
        hm = HeterogeneousMemory(
            dram=dram(max(int(peak * 0.35), 1)), pmm=pmm(peak * 10)
        )
        sim = HMSimulator(hm)
        cap = hm.dram.capacity_bytes
        t_sparta = sim.simulate(
            profile, sparta_policy_characterized(profile, sim, cap)
        ).total_seconds
        t_bw = sim.simulate(
            profile, bandwidth_aware_placement(profile, cap)
        ).total_seconds
        assert t_sparta <= t_bw * 1.001
