"""Tests for the §4.2 size estimators (Eqs. 5-6)."""

import numpy as np
import pytest

from repro.core.plan import ContractionPlan
from repro.core.profile import DataObject
from repro.errors import ShapeError
from repro.hashtable import HashTensor
from repro.memory import (
    estimate_from_tensors,
    hta_size_upper,
    hty_size,
    z_size,
    zlocal_size,
)
from repro.tensor import random_tensor_fibered


class TestFormulas:
    def test_eq5_structure(self):
        # Size_ep * #Buckets + nnz * (Size_idx * N_Y + Size_val + Size_ep)
        assert hty_size(100, 4, 128) == 8 * 128 + 100 * (8 * 4 + 8 + 8)

    def test_eq5_scales_linearly_in_nnz(self):
        fixed = hty_size(0, 4, 128)
        assert hty_size(200, 4, 128) - fixed == 2 * (
            hty_size(100, 4, 128) - fixed
        )

    def test_eq6_structure(self):
        assert hta_size_upper(10, 20, 2, 64) == 8 * 64 + 200 * (
            8 * 2 + 8 + 8
        )

    def test_zlocal(self):
        assert zlocal_size(1000, 3, 50) == 1000 + 8 * 3 * 50

    def test_z_sums_locals(self):
        assert z_size([100, 200, 300]) == 600

    def test_validation(self):
        with pytest.raises(ShapeError):
            hty_size(-1, 4, 16)
        with pytest.raises(ShapeError):
            hty_size(10, 0, 16)
        with pytest.raises(ShapeError):
            hta_size_upper(-1, 1, 1, 1)
        with pytest.raises(ShapeError):
            zlocal_size(-1, 1, 1)


class TestAgainstMeasurement:
    @pytest.fixture
    def setup(self):
        x = random_tensor_fibered((12, 12, 15, 15), 800, 2, 50, seed=81)
        y = random_tensor_fibered((15, 15, 10, 10), 1500, 2, 120, seed=82)
        plan = ContractionPlan.create(x, y, (2, 3), (0, 1))
        return x, y, plan

    def test_eq5_bounds_measured_hty(self, setup):
        # Eq. 5 charges one chain entry per non-zero (the original C
        # layout); our HtY stores one chain entry per *group* and packs
        # group members contiguously, so Eq. 5 upper-bounds the
        # measurement but stays within a small constant of it.
        x, y, plan = setup
        hty = HashTensor.from_coo(y, plan.cy)
        est = hty_size(y.nnz, y.order, hty.table.num_buckets)
        assert hty.nbytes <= est <= 6 * hty.nbytes

    def test_eq6_upper_bounds_measured_hta(self, setup):
        from repro.core import contract

        x, y, plan = setup
        res = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )
        from repro.core.common import prepare_x
        from repro.core.profile import RunProfile

        px = prepare_x(x, plan, RunProfile("probe"))
        hty = HashTensor.from_coo(y, plan.cy)
        est = estimate_from_tensors(
            x_fiber_ptr=px.ptr,
            nnz_y=y.nnz,
            order_y=y.order,
            hty_buckets=hty.table.num_buckets,
            hty_max_group=hty.max_group_size,
            num_free_x=len(plan.fx),
            num_free_y=len(plan.fy),
        )
        measured = res.profile.object_bytes[DataObject.HTA]
        assert est.hta_per_thread >= measured

    def test_estimates_available_pre_search(self, setup):
        # Everything the estimator needs exists after input processing.
        x, y, plan = setup
        from repro.core.common import prepare_x
        from repro.core.profile import RunProfile

        px = prepare_x(x, plan, RunProfile("probe"))
        hty = HashTensor.from_coo(y, plan.cy)
        est = estimate_from_tensors(
            x_fiber_ptr=px.ptr,
            nnz_y=y.nnz,
            order_y=y.order,
            hty_buckets=hty.table.num_buckets,
            hty_max_group=hty.max_group_size,
            num_free_x=len(plan.fx),
            num_free_y=len(plan.fy),
            threads=4,
        )
        assert est.z == 4 * est.zlocal_per_thread
        assert est.zlocal_per_thread > est.hta_per_thread

    def test_as_dict_keys(self, setup):
        x, y, plan = setup
        hty = HashTensor.from_coo(y, plan.cy)
        from repro.core.common import prepare_x
        from repro.core.profile import RunProfile

        px = prepare_x(x, plan, RunProfile("probe"))
        est = estimate_from_tensors(
            x_fiber_ptr=px.ptr,
            nnz_y=y.nnz,
            order_y=y.order,
            hty_buckets=hty.table.num_buckets,
            hty_max_group=hty.max_group_size,
            num_free_x=len(plan.fx),
            num_free_y=len(plan.fy),
        )
        d = est.as_dict()
        assert set(d) == {
            DataObject.HTY,
            DataObject.HTA,
            DataObject.Z_LOCAL,
            DataObject.Z,
        }

    def test_threads_validated(self, setup):
        x, y, plan = setup
        with pytest.raises(ShapeError):
            estimate_from_tensors(
                x_fiber_ptr=np.asarray([0, 1]),
                nnz_y=1,
                order_y=2,
                hty_buckets=2,
                hty_max_group=1,
                num_free_x=1,
                num_free_y=1,
                threads=0,
            )
