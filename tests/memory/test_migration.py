"""Tests for the dynamic placement & migration engine."""

import pytest

from repro.core import contract
from repro.core.profile import DataObject
from repro.core.stages import STAGE_ORDER, Stage
from repro.errors import PlacementError
from repro.memory import (
    DRAM,
    DYNAMIC_POLICIES,
    PMM,
    HMSimulator,
    MigrationEngine,
    StreamRequest,
    dram,
    pmm,
    simulate_stream,
    stage_benefit,
    static_stream_scheduler,
)
from repro.memory.devices import HeterogeneousMemory
from repro.memory.migration import forecast_benefit, predict_object_traffic
from repro.tensor import random_tensor_fibered


@pytest.fixture(scope="module")
def profile():
    x = random_tensor_fibered((10, 10, 14, 14), 600, 2, 40, seed=93)
    y = random_tensor_fibered((14, 14, 12, 12), 1400, 2, 200, seed=94)
    return contract(
        x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
    ).profile


def _machine(profile, *, fraction):
    placeable = max(
        profile.object_bytes.get(o, 0)
        for o in DataObject
        if o not in (DataObject.X, DataObject.Y)
    )
    cap = max(int(placeable * fraction), 1)
    return HeterogeneousMemory(dram=dram(cap), pmm=pmm(cap * 50))


@pytest.fixture
def pressured(profile):
    return _machine(profile, fraction=1.3)


@pytest.fixture
def roomy(profile):
    total = sum(profile.object_bytes.values())
    return HeterogeneousMemory(
        dram=dram(total * 2), pmm=pmm(total * 50)
    )


class TestEngineBasics:
    def test_rejects_unknown_policy(self, pressured):
        with pytest.raises(PlacementError):
            MigrationEngine(pressured, policy="oracle")

    def test_rejects_bad_knobs(self, pressured):
        with pytest.raises(PlacementError):
            MigrationEngine(pressured, lookahead_stages=-1)
        with pytest.raises(PlacementError):
            MigrationEngine(pressured, ewma_alpha=0.0)

    @pytest.mark.parametrize("policy", DYNAMIC_POLICIES)
    def test_schedules_are_strict_and_labelled(
        self, profile, pressured, policy
    ):
        engine = MigrationEngine(pressured, policy=policy)
        sched = engine.schedule_run(profile)
        assert sched.strict
        assert sched.policy == f"dynamic:{policy}"
        sched.validate()  # complete per-stage maps by construction
        assert set(sched.per_stage) == set(STAGE_ORDER)

    def test_deterministic(self, profile, pressured):
        a = MigrationEngine(pressured).schedule_run(profile)
        b = MigrationEngine(pressured).schedule_run(profile)
        assert a.per_stage == b.per_stage
        assert a.migrations == b.migrations

    def test_rejects_negative_pins(self, profile, pressured):
        with pytest.raises(PlacementError):
            MigrationEngine(pressured).schedule_run(
                profile, pinned_bytes=-1
            )

    def test_counters_track_runs(self, profile, pressured):
        engine = MigrationEngine(pressured)
        engine.schedule_run(profile)
        engine.schedule_run(profile)
        assert engine.counters["runs"] == 2
        engine.reset()
        assert engine.counters["runs"] == 0


class TestPlacementQuality:
    def test_beats_static_under_pressure(self, profile, pressured):
        sim = HMSimulator(pressured)
        requests = [StreamRequest(profile)] * 3
        static = simulate_stream(
            sim, requests, static_stream_scheduler(pressured)
        )
        engine = MigrationEngine(pressured, policy="lookahead")
        dynamic = simulate_stream(
            sim, requests, engine.schedule_run, overlap=True
        )
        assert dynamic.total_seconds < static.total_seconds

    @pytest.mark.parametrize("policy", DYNAMIC_POLICIES)
    def test_never_loses_when_fits(self, profile, roomy, policy):
        # With everything resident, dynamic placement must not churn:
        # no paid demotions, and no loss against the static placement.
        sim = HMSimulator(roomy)
        requests = [StreamRequest(profile)] * 3
        static = simulate_stream(
            sim, requests, static_stream_scheduler(roomy)
        )
        engine = MigrationEngine(roomy, policy=policy)
        # Warm the past-window policies as the serve telemetry feed
        # would; without history EWMA lags by design (its documented
        # cold-start pathology, mirrored by IAL).
        engine.observe(profile)
        dynamic = simulate_stream(
            sim, requests, engine.schedule_run, overlap=True
        )
        assert engine.counters["demotions"] == 0
        assert dynamic.total_seconds <= static.total_seconds * 1.05

    def test_allocation_time_placement_is_free(self, profile, roomy):
        # Z first appears in WRITEBACK; with room in DRAM the engine
        # allocates it there — placement without a migration.
        engine = MigrationEngine(roomy, policy="lookahead")
        sched = engine.schedule_run(profile)
        assert sched.per_stage[Stage.WRITEBACK][DataObject.Z] == DRAM
        assert not any(
            m.obj is DataObject.Z for m in sched.migrations
        )

    def test_pins_shrink_capacity(self, profile, roomy):
        # Pinning (almost) all of DRAM forces an all-PMM schedule.
        engine = MigrationEngine(roomy, policy="lookahead")
        sched = engine.schedule_run(
            profile, pinned_bytes=roomy.dram.capacity_bytes
        )
        assert not sched.migrations
        for stage in STAGE_ORDER:
            assert all(
                dev == PMM for dev in sched.per_stage[stage].values()
            )

    def test_inclusive_demotes_clean_for_free(self, profile, pressured):
        exclusive = MigrationEngine(pressured, policy="lookahead")
        inclusive = MigrationEngine(pressured, policy="inclusive")
        ex = exclusive.schedule_run(profile)
        inc = inclusive.schedule_run(profile)
        paid = lambda e: (
            e.counters["demotions"] + e.counters["free_demotions"]
        )
        # Same displacement decisions, but the inclusive fast tier
        # writes back no more (usually fewer) clean victims.
        assert (
            inclusive.counters["demotions"]
            <= exclusive.counters["demotions"]
        )
        assert len(inc.migrations) <= len(ex.migrations)


class TestCrossRequestLearning:
    def test_observe_builds_ewma(self, profile, pressured):
        engine = MigrationEngine(pressured, policy="ewma")
        assert not engine._ewma
        engine.observe(profile)
        assert engine._ewma
        assert engine.counters["observed_profiles"] == 1

    def test_consume_drains_feed(self, profile, pressured):
        class Event:
            def __init__(self, profile):
                self.profile = profile

        class Feed:
            def __init__(self, events):
                self.events = events

            def drain(self):
                events, self.events = self.events, []
                return events

        engine = MigrationEngine(pressured, policy="ewma")
        feed = Feed([Event(profile), Event(profile)])
        assert engine.consume(feed) == 2
        assert engine.counters["observed_profiles"] == 2
        assert engine.consume(feed) == 0

    def test_ewma_state_survives_runs(self, profile, pressured):
        engine = MigrationEngine(pressured, policy="ewma")
        engine.schedule_run(profile)
        warm = dict(engine._ewma)
        assert warm
        # A second run starts from learned hotness, not from zero.
        engine.schedule_run(profile)
        assert engine._ewma.keys() == warm.keys()


class TestForecasts:
    def test_stage_benefit_positive_where_traffic(
        self, profile, pressured
    ):
        benefit = stage_benefit(profile, pressured)
        assert benefit[Stage.ACCUMULATION][DataObject.HTA] > 0
        assert DataObject.HTA not in benefit[Stage.INPUT_PROCESSING]

    def test_predicted_traffic_sums_match_cost_model(self):
        from repro.planner.cost_model import CostModel
        from repro.planner.stats import contraction_stats
        from repro.core.htycache import cached_plan

        x = random_tensor_fibered(
            (10, 10, 14, 14), 600, 2, 40, seed=93
        )
        y = random_tensor_fibered(
            (14, 14, 12, 12), 1400, 2, 200, seed=94
        )
        plan = cached_plan(x, y, (2, 3), (0, 1))
        stats = contraction_stats(x, y, plan)
        per_stage = CostModel().predict_traffic(stats)
        per_object = predict_object_traffic(stats)
        for stage in STAGE_ORDER:
            assert sum(per_object[stage].values()) == per_stage[
                stage.value
            ]

    def test_forecast_benefit_drives_schedule(self, profile, pressured):
        from repro.planner.stats import contraction_stats
        from repro.core.htycache import cached_plan

        x = random_tensor_fibered(
            (10, 10, 14, 14), 600, 2, 40, seed=93
        )
        y = random_tensor_fibered(
            (14, 14, 12, 12), 1400, 2, 200, seed=94
        )
        plan = cached_plan(x, y, (2, 3), (0, 1))
        stats = contraction_stats(x, y, plan)
        benefit = forecast_benefit(stats, pressured)
        engine = MigrationEngine(pressured, policy="lookahead")
        sched = engine.schedule_run(profile, benefit=benefit)
        sched.validate()
        assert sched.policy == "dynamic:lookahead"


class TestStreamHelpers:
    def test_static_scheduler_uniform_across_stages(
        self, profile, pressured
    ):
        sched = static_stream_scheduler(pressured)(profile, 0)
        sched.validate()
        first = sched.per_stage[STAGE_ORDER[0]]
        for stage in STAGE_ORDER[1:]:
            assert sched.per_stage[stage] == first
        assert not sched.migrations

    def test_stream_result_sums_runs(self, profile, pressured):
        sim = HMSimulator(pressured)
        requests = [StreamRequest(profile)] * 2
        result = simulate_stream(
            sim, requests, static_stream_scheduler(pressured)
        )
        assert len(result.runs) == 2
        assert result.total_seconds == pytest.approx(
            sum(r.total_seconds for r in result.runs)
        )
        summary = result.summary()
        assert summary["requests"] == 2
        assert summary["policy"] == "sparta"


class TestMetrics:
    def test_fold_metrics(self, profile, pressured):
        from repro.obs import MetricsRegistry

        engine = MigrationEngine(pressured, policy="inclusive")
        engine.schedule_run(profile)
        registry = MetricsRegistry()
        registry.record_migration(engine)
        assert registry.get("memory.migration.policy") == "inclusive"
        assert registry.get("memory.migration.inclusive") == 1
        assert registry.get("memory.migration.runs") == 1
        assert registry.get("memory.migration.epochs") == len(
            STAGE_ORDER
        )
        assert (
            registry.get("memory.migration.promoted_bytes") is not None
        )
