"""Tests for traffic-trace classification — including the Table 2 check."""

import pytest

from repro.core import contract
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.stages import Stage
from repro.memory import (
    object_traffic_bytes,
    observed_signatures,
    stage_traffic_bytes,
    verify_table2,
)
from repro.tensor import random_tensor_fibered


@pytest.fixture
def sparta_profile():
    x = random_tensor_fibered((10, 10, 14, 14), 600, 2, 40, seed=91)
    y = random_tensor_fibered((14, 14, 12, 12), 1200, 2, 150, seed=92)
    return contract(
        x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
    ).profile


class TestTable2:
    def test_sparta_traffic_matches_table2(self, sparta_profile):
        """The headline oracle: engine traffic == the paper's Table 2."""
        assert verify_table2(sparta_profile) == []

    def test_violation_detected_wrong_stage(self):
        p = RunProfile("bad")
        p.record_traffic(
            DataObject.HTA, Stage.INDEX_SEARCH,  # HtA untouched here
            AccessKind.READ, AccessPattern.RANDOM, 10,
        )
        assert len(verify_table2(p)) == 1

    def test_violation_detected_wrong_kind(self):
        p = RunProfile("bad")
        p.record_traffic(
            DataObject.Y, Stage.INPUT_PROCESSING,
            AccessKind.WRITE, AccessPattern.SEQUENTIAL, 10,  # Y is RO
        )
        assert any("kinds" in msg for msg in verify_table2(p))

    def test_violation_detected_wrong_pattern(self):
        p = RunProfile("bad")
        p.record_traffic(
            DataObject.HTY, Stage.INDEX_SEARCH,
            AccessKind.READ, AccessPattern.SEQUENTIAL, 10,  # should be random
        )
        assert any("pattern" in msg for msg in verify_table2(p))


class TestAggregation:
    def test_observed_signatures_dominant_pattern(self):
        p = RunProfile("x")
        p.record_traffic(
            DataObject.X, Stage.INPUT_PROCESSING,
            AccessKind.READ, AccessPattern.RANDOM, 100,
        )
        p.record_traffic(
            DataObject.X, Stage.INPUT_PROCESSING,
            AccessKind.READ, AccessPattern.SEQUENTIAL, 10,
        )
        sig = observed_signatures(p)[(DataObject.X, Stage.INPUT_PROCESSING)]
        assert sig[0] is AccessPattern.RANDOM

    def test_stage_traffic_bytes(self, sparta_profile):
        per_obj = stage_traffic_bytes(sparta_profile, Stage.INDEX_SEARCH)
        assert per_obj[DataObject.X] > 0
        assert per_obj[DataObject.HTY] > 0
        assert DataObject.HTA not in per_obj

    def test_object_traffic_total(self, sparta_profile):
        per_obj = object_traffic_bytes(sparta_profile)
        total = sum(per_obj.values())
        assert total == sparta_profile.traffic_bytes()
