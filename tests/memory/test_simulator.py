"""Tests for the heterogeneous-memory execution simulator."""

import pytest

from repro.core import contract
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.stages import STAGE_ORDER, Stage
from repro.errors import PlacementError
from repro.memory import (
    DRAM,
    PMM,
    HMSimulator,
    Migration,
    PlacementSchedule,
    all_dram_placement,
    all_pmm_placement,
    dram,
    pmm,
    single_object_pmm,
)
from repro.memory.devices import HeterogeneousMemory
from repro.tensor import random_tensor_fibered


@pytest.fixture
def profile():
    x = random_tensor_fibered((10, 10, 14, 14), 600, 2, 40, seed=93)
    y = random_tensor_fibered((14, 14, 12, 12), 1400, 2, 200, seed=94)
    return contract(
        x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
    ).profile


@pytest.fixture
def sim(profile):
    peak = max(profile.peak_bytes(), 1)
    hm = HeterogeneousMemory(dram=dram(peak), pmm=pmm(peak * 10))
    return HMSimulator(hm)


class TestStaticSimulation:
    def test_all_dram_equals_measured(self, profile, sim):
        run = sim.simulate(profile, all_dram_placement())
        assert run.total_seconds == pytest.approx(profile.total_seconds)

    def test_all_pmm_slower(self, profile, sim):
        base = sim.simulate(profile, all_dram_placement()).total_seconds
        pmm_run = sim.simulate(profile, all_pmm_placement()).total_seconds
        assert pmm_run > base

    def test_calibrated_stall_fraction(self, profile, sim):
        base = sim.simulate(profile, all_dram_placement()).total_seconds
        pmm_run = sim.simulate(profile, all_pmm_placement()).total_seconds
        # Auto-calibration: all-PMM spends pmm_stall_fraction on stalls.
        stall = (pmm_run - base) / pmm_run
        assert stall == pytest.approx(sim.pmm_stall_fraction, rel=1e-6)

    def test_single_object_between_extremes(self, profile, sim):
        base = sim.simulate(profile, all_dram_placement()).total_seconds
        worst = sim.simulate(profile, all_pmm_placement()).total_seconds
        for obj in DataObject:
            t = sim.simulate(
                profile, single_object_pmm(obj)
            ).total_seconds
            assert base - 1e-12 <= t <= worst + 1e-12

    def test_single_object_penalties_additive(self, profile, sim):
        # Penalties are per-record, so individual object penalties sum
        # to the all-PMM penalty.
        base = sim.simulate(profile, all_dram_placement()).total_seconds
        total_delta = sum(
            sim.simulate(profile, single_object_pmm(o)).total_seconds
            - base
            for o in DataObject
        )
        pmm_delta = (
            sim.simulate(profile, all_pmm_placement()).total_seconds - base
        )
        assert total_delta == pytest.approx(pmm_delta, rel=1e-9)

    def test_fixed_amplification(self, profile):
        peak = max(profile.peak_bytes(), 1)
        hm = HeterogeneousMemory(dram=dram(peak), pmm=pmm(peak * 10))
        s = HMSimulator(hm, amplification=0.0)
        run = s.simulate(profile, all_pmm_placement())
        assert run.total_seconds == pytest.approx(profile.total_seconds)

    def test_stage_accounting(self, profile, sim):
        run = sim.simulate(profile, all_pmm_placement())
        assert set(s.stage for s in run.stages) <= set(STAGE_ORDER)
        assert run.total_seconds == pytest.approx(
            sum(s.seconds for s in run.stages)
        )

    def test_bad_stall_fraction(self, profile):
        peak = max(profile.peak_bytes(), 1)
        hm = HeterogeneousMemory(dram=dram(peak), pmm=pmm(peak))
        with pytest.raises(PlacementError):
            HMSimulator(hm, pmm_stall_fraction=1.5)


class TestScheduleSimulation:
    def test_migration_costs_time(self, profile, sim):
        static = {
            stage: {o: PMM for o in DataObject} for stage in STAGE_ORDER
        }
        no_mig = PlacementSchedule("a", static)
        with_mig = PlacementSchedule(
            "b",
            static,
            [
                Migration(
                    Stage.INDEX_SEARCH, DataObject.HTY,
                    10**6, PMM, DRAM,
                )
            ],
        )
        t0 = sim.simulate_schedule(profile, no_mig).total_seconds
        t1 = sim.simulate_schedule(profile, with_mig).total_seconds
        assert t1 > t0

    def test_lag_fraction_blends(self, profile, sim):
        # Placement: PMM in stage 1, DRAM afterwards. With lag=1 each
        # stage sees the previous stage's placement.
        per_stage = {}
        for i, stage in enumerate(STAGE_ORDER):
            dev = PMM if i == 0 else DRAM
            per_stage[stage] = {o: dev for o in DataObject}
        sched = PlacementSchedule("lagtest", per_stage)
        eager = sim.simulate_schedule(
            profile, sched, lag_fraction=0.0
        ).total_seconds
        lagged = sim.simulate_schedule(
            profile, sched, lag_fraction=1.0
        ).total_seconds
        # Full lag shifts stage 2 onto stage 1's PMM placement: slower.
        assert lagged > eager

    def test_bad_lag_rejected(self, profile, sim):
        sched = PlacementSchedule("x", {})
        with pytest.raises(PlacementError):
            sim.simulate_schedule(profile, sched, lag_fraction=2.0)

    def test_unmapped_objects_default_to_pmm(self, profile, sim):
        sched = PlacementSchedule("empty", {})
        run = sim.simulate_schedule(profile, sched)
        pmm_only = sim.simulate(profile, all_pmm_placement())
        assert run.total_seconds == pytest.approx(
            pmm_only.total_seconds
        )


def _uniform_schedule(device, policy="uniform", **kwargs):
    return PlacementSchedule(
        policy,
        {
            stage: {o: device for o in DataObject}
            for stage in STAGE_ORDER
        },
        **kwargs,
    )


class TestStrictSchedules:
    def test_strict_accepts_complete_schedule(self):
        sched = _uniform_schedule(PMM, strict=True)
        assert sched.device_of(
            Stage.ACCUMULATION, DataObject.HTA
        ) == PMM

    def test_strict_rejects_missing_stage(self):
        per_stage = {
            stage: {o: PMM for o in DataObject}
            for stage in STAGE_ORDER
            if stage is not Stage.WRITEBACK
        }
        with pytest.raises(PlacementError, match="writeback"):
            PlacementSchedule("partial", per_stage, strict=True)

    def test_strict_rejects_unmapped_object(self):
        per_stage = {
            stage: {o: PMM for o in DataObject}
            for stage in STAGE_ORDER
        }
        del per_stage[Stage.ACCUMULATION][DataObject.HTA]
        with pytest.raises(PlacementError, match="HtA"):
            PlacementSchedule("partial", per_stage, strict=True)

    def test_strict_rejects_bad_migration(self):
        per_stage = {
            stage: {o: PMM for o in DataObject}
            for stage in STAGE_ORDER
        }
        with pytest.raises(PlacementError):
            PlacementSchedule(
                "neg", per_stage,
                [Migration(
                    Stage.WRITEBACK, DataObject.Z, -1, PMM, DRAM
                )],
                strict=True,
            )

    def test_strict_device_of_raises_on_unmapped(self):
        # The silent-PMM default hid typo'd lookups; strict mode turns
        # them into errors instead of quietly simulating PMM traffic.
        sched = PlacementSchedule("empty", {})
        sched.strict = True
        with pytest.raises(PlacementError):
            sched.device_of(Stage.INPUT_PROCESSING, DataObject.HTY)

    def test_lenient_device_of_still_defaults(self):
        sched = PlacementSchedule("empty", {})
        assert sched.device_of(
            Stage.INPUT_PROCESSING, DataObject.HTY
        ) == PMM


class TestScheduleEdgeCases:
    def test_lag_zero_matches_static(self, profile, sim):
        sched = _uniform_schedule(PMM)
        t0 = sim.simulate_schedule(
            profile, sched, lag_fraction=0.0
        ).total_seconds
        static = sim.simulate(profile, all_pmm_placement()).total_seconds
        assert t0 == pytest.approx(static)

    def test_full_lag_uniform_schedule_is_noop(self, profile, sim):
        # With one mapping for every stage, seeing the previous stage's
        # placement changes nothing — lag 1.0 must equal lag 0.0.
        sched = _uniform_schedule(PMM)
        t0 = sim.simulate_schedule(
            profile, sched, lag_fraction=0.0
        ).total_seconds
        t1 = sim.simulate_schedule(
            profile, sched, lag_fraction=1.0
        ).total_seconds
        assert t1 == pytest.approx(t0)

    def test_first_stage_lag_uses_own_placement(self, profile, sim):
        # prev_stage is None at the first stage: the lagged share falls
        # back to the stage's own placement instead of crashing or
        # charging a phantom epoch.
        per_stage = {
            stage: {
                o: (DRAM if i == 0 else PMM) for o in DataObject
            }
            for i, stage in enumerate(STAGE_ORDER)
        }
        sched = PlacementSchedule("first", per_stage)
        run = sim.simulate_schedule(profile, sched, lag_fraction=1.0)
        first = next(
            s for s in run.stages
            if s.stage is Stage.INPUT_PROCESSING
        )
        assert first.penalty_seconds == pytest.approx(0.0)

    def test_migration_on_idle_stage_still_counted(self):
        # A migration scheduled before a stage with zero CPU seconds and
        # zero traffic must still appear in the simulated stages (the
        # move happens even if the stage itself does nothing).
        prof = RunProfile(engine="synthetic")
        prof.add_time(Stage.INPUT_PROCESSING, 0.01)
        hm = HeterogeneousMemory(dram=dram(1 << 20), pmm=pmm(1 << 24))
        s = HMSimulator(hm, amplification=1.0)
        sched = _uniform_schedule(PMM)
        sched.migrations.append(
            Migration(Stage.WRITEBACK, DataObject.Z, 10**6, PMM, DRAM)
        )
        run = s.simulate_schedule(prof, sched)
        writeback = [
            st for st in run.stages if st.stage is Stage.WRITEBACK
        ]
        assert writeback and writeback[0].migration_seconds > 0

    def test_migration_bytes_conserved(self, profile, sim):
        # Every migration adds its (amplified) bytes to BOTH endpoint
        # devices: read from src, write to dst.
        sched = _uniform_schedule(PMM)
        nbytes = 10**6
        with_mig = PlacementSchedule(
            "mig", sched.per_stage,
            [Migration(
                Stage.INDEX_SEARCH, DataObject.HTY, nbytes, PMM, DRAM
            )],
        )
        base = sim.simulate_schedule(profile, sched)
        moved = sim.simulate_schedule(profile, with_mig)

        def total_bytes(run):
            return sum(
                sum(st.device_bytes.values()) for st in run.stages
            )

        amp = sim.amplification_for(profile)
        assert total_bytes(moved) - total_bytes(base) == pytest.approx(
            2 * amp * nbytes
        )

    def test_overlap_timing_is_max_not_sum(self, profile, sim):
        sched = _uniform_schedule(PMM)
        migs = [
            Migration(
                Stage.INDEX_SEARCH, DataObject.HTY, 10**6, PMM, DRAM
            ),
            Migration(
                Stage.INDEX_SEARCH, DataObject.HTA, 10**6, DRAM, PMM
            ),
        ]
        with_mig = PlacementSchedule("mig", sched.per_stage, migs)
        additive = sim.simulate_schedule(profile, with_mig)
        overlapped = sim.simulate_schedule(
            profile, with_mig, overlap=True
        )
        add_s = sum(st.migration_seconds for st in additive.stages)
        over_s = sum(st.migration_seconds for st in overlapped.stages)
        assert 0 < over_s < add_s

    def test_extra_tier_migrations_account(self, profile):
        # Migrations naming a third tier used to KeyError on the
        # pre-seeded {DRAM, PMM} byte counters; with normalized device
        # lookup they account like any other tier.
        from repro.memory.devices import MemoryDevice

        base = dram(1 << 24)
        hbm = MemoryDevice(
            name="HBM",
            capacity_bytes=1 << 22,
            bandwidth=dict(base.bandwidth),
        )
        hm = HeterogeneousMemory(
            dram=base, pmm=pmm(1 << 26), extras=(hbm,)
        )
        s = HMSimulator(hm, amplification=1.0)
        sched = _uniform_schedule(PMM)
        with_mig = PlacementSchedule(
            "hbm", sched.per_stage,
            [Migration(
                Stage.ACCUMULATION, DataObject.HTA, 10**6, PMM, "HBM"
            )],
        )
        run = s.simulate_schedule(profile, with_mig)
        acc = next(
            st for st in run.stages if st.stage is Stage.ACCUMULATION
        )
        assert acc.device_bytes.get("HBM", 0.0) == pytest.approx(10**6)
        assert acc.migration_seconds > 0


class TestMemoryMode:
    def test_between_extremes(self, profile, sim):
        base = sim.simulate(profile, all_dram_placement()).total_seconds
        worst = sim.simulate(profile, all_pmm_placement()).total_seconds
        mm = sim.simulate_memory_mode(profile).total_seconds
        assert base < mm < worst * 1.5

    def test_bigger_cache_helps(self, profile):
        peak = max(profile.peak_bytes(), 1)
        small = HMSimulator(
            HeterogeneousMemory(
                dram=dram(max(peak // 10, 1)), pmm=pmm(peak * 10)
            ),
            amplification=1.0,
        )
        big = HMSimulator(
            HeterogeneousMemory(dram=dram(peak * 2), pmm=pmm(peak * 10)),
            amplification=1.0,
        )
        assert (
            big.simulate_memory_mode(profile).total_seconds
            < small.simulate_memory_mode(profile).total_seconds
        )

    def test_dram_traffic_includes_fills(self, profile, sim):
        mm = sim.simulate_memory_mode(profile)
        dram_bytes = sum(
            s.device_bytes.get(DRAM, 0.0) for s in mm.stages
        )
        assert dram_bytes > 0


class TestBandwidthTimeline:
    def test_csv_export(self, profile, sim):
        run = sim.simulate(profile, all_pmm_placement())
        csv = run.timeline_csv(samples_per_stage=2)
        lines = csv.strip().splitlines()
        assert lines[0] == "seconds,dram_gbps,pmm_gbps"
        assert len(lines) > 2
        # Parses as floats and times are monotone.
        times = [float(line.split(",")[0]) for line in lines[1:]]
        assert times == sorted(times)

    def test_timeline_shape(self, profile, sim):
        run = sim.simulate(profile, all_pmm_placement())
        tl = run.bandwidth_timeline(samples_per_stage=4)
        times = [t for t, _, _ in tl]
        assert times == sorted(times)
        assert tl[-1][0] == pytest.approx(run.total_seconds)
        # Optane-only: all bandwidth on PMM.
        assert all(d == 0.0 for _, d, _ in tl)
        assert any(p > 0.0 for _, _, p in tl)
