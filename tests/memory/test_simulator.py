"""Tests for the heterogeneous-memory execution simulator."""

import pytest

from repro.core import contract
from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.stages import STAGE_ORDER, Stage
from repro.errors import PlacementError
from repro.memory import (
    DRAM,
    PMM,
    HMSimulator,
    Migration,
    PlacementSchedule,
    all_dram_placement,
    all_pmm_placement,
    dram,
    pmm,
    single_object_pmm,
)
from repro.memory.devices import HeterogeneousMemory
from repro.tensor import random_tensor_fibered


@pytest.fixture
def profile():
    x = random_tensor_fibered((10, 10, 14, 14), 600, 2, 40, seed=93)
    y = random_tensor_fibered((14, 14, 12, 12), 1400, 2, 200, seed=94)
    return contract(
        x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
    ).profile


@pytest.fixture
def sim(profile):
    peak = max(profile.peak_bytes(), 1)
    hm = HeterogeneousMemory(dram=dram(peak), pmm=pmm(peak * 10))
    return HMSimulator(hm)


class TestStaticSimulation:
    def test_all_dram_equals_measured(self, profile, sim):
        run = sim.simulate(profile, all_dram_placement())
        assert run.total_seconds == pytest.approx(profile.total_seconds)

    def test_all_pmm_slower(self, profile, sim):
        base = sim.simulate(profile, all_dram_placement()).total_seconds
        pmm_run = sim.simulate(profile, all_pmm_placement()).total_seconds
        assert pmm_run > base

    def test_calibrated_stall_fraction(self, profile, sim):
        base = sim.simulate(profile, all_dram_placement()).total_seconds
        pmm_run = sim.simulate(profile, all_pmm_placement()).total_seconds
        # Auto-calibration: all-PMM spends pmm_stall_fraction on stalls.
        stall = (pmm_run - base) / pmm_run
        assert stall == pytest.approx(sim.pmm_stall_fraction, rel=1e-6)

    def test_single_object_between_extremes(self, profile, sim):
        base = sim.simulate(profile, all_dram_placement()).total_seconds
        worst = sim.simulate(profile, all_pmm_placement()).total_seconds
        for obj in DataObject:
            t = sim.simulate(
                profile, single_object_pmm(obj)
            ).total_seconds
            assert base - 1e-12 <= t <= worst + 1e-12

    def test_single_object_penalties_additive(self, profile, sim):
        # Penalties are per-record, so individual object penalties sum
        # to the all-PMM penalty.
        base = sim.simulate(profile, all_dram_placement()).total_seconds
        total_delta = sum(
            sim.simulate(profile, single_object_pmm(o)).total_seconds
            - base
            for o in DataObject
        )
        pmm_delta = (
            sim.simulate(profile, all_pmm_placement()).total_seconds - base
        )
        assert total_delta == pytest.approx(pmm_delta, rel=1e-9)

    def test_fixed_amplification(self, profile):
        peak = max(profile.peak_bytes(), 1)
        hm = HeterogeneousMemory(dram=dram(peak), pmm=pmm(peak * 10))
        s = HMSimulator(hm, amplification=0.0)
        run = s.simulate(profile, all_pmm_placement())
        assert run.total_seconds == pytest.approx(profile.total_seconds)

    def test_stage_accounting(self, profile, sim):
        run = sim.simulate(profile, all_pmm_placement())
        assert set(s.stage for s in run.stages) <= set(STAGE_ORDER)
        assert run.total_seconds == pytest.approx(
            sum(s.seconds for s in run.stages)
        )

    def test_bad_stall_fraction(self, profile):
        peak = max(profile.peak_bytes(), 1)
        hm = HeterogeneousMemory(dram=dram(peak), pmm=pmm(peak))
        with pytest.raises(PlacementError):
            HMSimulator(hm, pmm_stall_fraction=1.5)


class TestScheduleSimulation:
    def test_migration_costs_time(self, profile, sim):
        static = {
            stage: {o: PMM for o in DataObject} for stage in STAGE_ORDER
        }
        no_mig = PlacementSchedule("a", static)
        with_mig = PlacementSchedule(
            "b",
            static,
            [
                Migration(
                    Stage.INDEX_SEARCH, DataObject.HTY,
                    10**6, PMM, DRAM,
                )
            ],
        )
        t0 = sim.simulate_schedule(profile, no_mig).total_seconds
        t1 = sim.simulate_schedule(profile, with_mig).total_seconds
        assert t1 > t0

    def test_lag_fraction_blends(self, profile, sim):
        # Placement: PMM in stage 1, DRAM afterwards. With lag=1 each
        # stage sees the previous stage's placement.
        per_stage = {}
        for i, stage in enumerate(STAGE_ORDER):
            dev = PMM if i == 0 else DRAM
            per_stage[stage] = {o: dev for o in DataObject}
        sched = PlacementSchedule("lagtest", per_stage)
        eager = sim.simulate_schedule(
            profile, sched, lag_fraction=0.0
        ).total_seconds
        lagged = sim.simulate_schedule(
            profile, sched, lag_fraction=1.0
        ).total_seconds
        # Full lag shifts stage 2 onto stage 1's PMM placement: slower.
        assert lagged > eager

    def test_bad_lag_rejected(self, profile, sim):
        sched = PlacementSchedule("x", {})
        with pytest.raises(PlacementError):
            sim.simulate_schedule(profile, sched, lag_fraction=2.0)

    def test_unmapped_objects_default_to_pmm(self, profile, sim):
        sched = PlacementSchedule("empty", {})
        run = sim.simulate_schedule(profile, sched)
        pmm_only = sim.simulate(profile, all_pmm_placement())
        assert run.total_seconds == pytest.approx(
            pmm_only.total_seconds
        )


class TestMemoryMode:
    def test_between_extremes(self, profile, sim):
        base = sim.simulate(profile, all_dram_placement()).total_seconds
        worst = sim.simulate(profile, all_pmm_placement()).total_seconds
        mm = sim.simulate_memory_mode(profile).total_seconds
        assert base < mm < worst * 1.5

    def test_bigger_cache_helps(self, profile):
        peak = max(profile.peak_bytes(), 1)
        small = HMSimulator(
            HeterogeneousMemory(
                dram=dram(max(peak // 10, 1)), pmm=pmm(peak * 10)
            ),
            amplification=1.0,
        )
        big = HMSimulator(
            HeterogeneousMemory(dram=dram(peak * 2), pmm=pmm(peak * 10)),
            amplification=1.0,
        )
        assert (
            big.simulate_memory_mode(profile).total_seconds
            < small.simulate_memory_mode(profile).total_seconds
        )

    def test_dram_traffic_includes_fills(self, profile, sim):
        mm = sim.simulate_memory_mode(profile)
        dram_bytes = sum(
            s.device_bytes.get(DRAM, 0.0) for s in mm.stages
        )
        assert dram_bytes > 0


class TestBandwidthTimeline:
    def test_csv_export(self, profile, sim):
        run = sim.simulate(profile, all_pmm_placement())
        csv = run.timeline_csv(samples_per_stage=2)
        lines = csv.strip().splitlines()
        assert lines[0] == "seconds,dram_gbps,pmm_gbps"
        assert len(lines) > 2
        # Parses as floats and times are monotone.
        times = [float(line.split(",")[0]) for line in lines[1:]]
        assert times == sorted(times)

    def test_timeline_shape(self, profile, sim):
        run = sim.simulate(profile, all_pmm_placement())
        tl = run.bandwidth_timeline(samples_per_stage=4)
        times = [t for t, _, _ in tl]
        assert times == sorted(times)
        assert tl[-1][0] == pytest.approx(run.total_seconds)
        # Optane-only: all bandwidth on PMM.
        assert all(d == 0.0 for _, d, _ in tl)
        assert any(p > 0.0 for _, _, p in tl)
