"""Cost-model properties: monotonicity, calibration, traffic sanity.

The model's usefulness rests on three pillars pinned here:

* every cost term is ``positive coefficient x count``, so predictions
  are monotone in the operand statistics (hypothesis-fuzzed);
* the calibration JSON round-trips losslessly and rejects malformed
  profiles (wrong version, missing/non-positive coefficients);
* the Table-2-style traffic prediction ranks stages like the measured
  accounting on the seed workloads (the model may be off in absolute
  bytes, but it must not reorder the pipeline's hot spots).
"""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import contract
from repro.core.htycache import cached_plan
from repro.datasets import make_case
from repro.errors import ContractionError
from repro.planner import (
    CALIBRATION_VERSION,
    CalibrationProfile,
    ContractionStats,
    CostModel,
    builtin_calibration,
    contraction_stats,
)


def make_stats(
    nnz_x: int,
    nnz_y: int,
    groups: int,
    contract_capacity: int = 1 << 12,
    fy_capacity: int = 1 << 10,
) -> ContractionStats:
    return ContractionStats(
        nnz_x=nnz_x,
        nnz_y=nnz_y,
        x_shape=(64, 64, 64),
        y_shape=(64, 64, 64),
        cx=(2,),
        cy=(0,),
        contract_capacity=contract_capacity,
        fy_capacity=fy_capacity,
        fx_capacity=1 << 12,
        groups=max(min(groups, nnz_y), 1) if nnz_y else 0,
        exact_groups=False,
    )


MODEL = CostModel(calibration=builtin_calibration())

stat_sizes = st.integers(min_value=0, max_value=1 << 22)
deltas = st.integers(min_value=1, max_value=1 << 20)
schedules = st.sampled_from(
    [
        {"engine": "serial", "workers": 1},
        {"engine": "thread", "workers": 4},
        {"engine": "process", "workers": 2},
        {"engine": "thread", "workers": 8, "parallel_stage1": False},
        {"engine": "thread", "workers": 2, "merge_output": False},
    ]
)
accumulators = st.sampled_from(["hash", "dense"])


class TestMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(
        nnz_x=stat_sizes, nnz_y=stat_sizes, groups=deltas,
        delta=deltas, schedule=schedules, accumulator=accumulators,
    )
    def test_cost_nondecreasing_in_nnz_x(
        self, nnz_x, nnz_y, groups, delta, schedule, accumulator
    ):
        lo = MODEL.estimate(
            make_stats(nnz_x, nnz_y, groups),
            accumulator=accumulator, **schedule,
        ).seconds
        hi = MODEL.estimate(
            make_stats(nnz_x + delta, nnz_y, groups),
            accumulator=accumulator, **schedule,
        ).seconds
        assert hi >= lo

    @settings(max_examples=60, deadline=None)
    @given(
        nnz_x=stat_sizes, nnz_y=stat_sizes, groups=deltas,
        delta=deltas, schedule=schedules, accumulator=accumulators,
    )
    def test_cost_nondecreasing_in_nnz_y(
        self, nnz_x, nnz_y, groups, delta, schedule, accumulator
    ):
        # groups held fixed: adding Y rows while the contract-key
        # population stays put grows every downstream count
        g = max(min(groups, nnz_y), 1)
        lo = MODEL.estimate(
            make_stats(nnz_x, nnz_y, g),
            accumulator=accumulator, **schedule,
        ).seconds
        hi = MODEL.estimate(
            make_stats(nnz_x, nnz_y + delta, g),
            accumulator=accumulator, **schedule,
        ).seconds
        assert hi >= lo

    @settings(max_examples=60, deadline=None)
    @given(
        nnz_x=deltas, nnz_y=deltas, groups=deltas, delta=deltas,
        schedule=schedules, accumulator=accumulators,
    )
    def test_cost_nonincreasing_in_groups(
        self, nnz_x, nnz_y, groups, delta, schedule, accumulator
    ):
        # more distinct contract keys -> fewer pairings per key -> a
        # smaller contracted workload; cost must not grow
        lo_groups = MODEL.estimate(
            make_stats(nnz_x, nnz_y, groups + delta),
            accumulator=accumulator, **schedule,
        ).seconds
        hi_groups = MODEL.estimate(
            make_stats(nnz_x, nnz_y, groups),
            accumulator=accumulator, **schedule,
        ).seconds
        assert hi_groups >= lo_groups

    @settings(max_examples=60, deadline=None)
    @given(
        nnz_x=stat_sizes, nnz_y=stat_sizes, groups=deltas,
        schedule=schedules, accumulator=accumulators,
    )
    def test_traffic_nondecreasing_in_nnz(
        self, nnz_x, nnz_y, groups, schedule, accumulator
    ):
        del schedule, accumulator  # traffic is schedule-independent
        lo = MODEL.predict_traffic(make_stats(nnz_x, nnz_y, groups))
        hi = MODEL.predict_traffic(
            make_stats(nnz_x + 1024, nnz_y + 1024, groups)
        )
        for stage, nbytes in lo.items():
            assert hi[stage] >= nbytes


class TestCalibration:
    def test_json_roundtrip_lossless(self):
        profile = builtin_calibration()
        clone = CalibrationProfile.from_json(profile.to_json())
        assert clone == profile
        assert clone.digest() == profile.digest()

    def test_fitted_file_roundtrip_lossless(self):
        from repro.planner.calibration import CALIBRATION_PATH

        profile = CalibrationProfile.load(CALIBRATION_PATH)
        clone = CalibrationProfile.from_json(profile.to_json())
        assert clone == profile

    def test_version_mismatch_rejected(self):
        with pytest.raises(ContractionError, match="version"):
            CalibrationProfile(
                version=CALIBRATION_VERSION + 1,
                coefficients=dict(builtin_calibration().coefficients),
            )

    def test_missing_coefficient_rejected(self):
        coeff = dict(builtin_calibration().coefficients)
        coeff.pop("probe")
        with pytest.raises(ContractionError, match="missing"):
            CalibrationProfile(
                version=CALIBRATION_VERSION, coefficients=coeff
            )

    def test_nonpositive_coefficient_rejected(self):
        coeff = dict(builtin_calibration().coefficients)
        coeff["sort_unit"] = 0.0
        with pytest.raises(ContractionError, match="positive"):
            CalibrationProfile(
                version=CALIBRATION_VERSION, coefficients=coeff
            )

    def test_efficiency_above_one_rejected(self):
        coeff = dict(builtin_calibration().coefficients)
        coeff["thread_efficiency"] = 1.5
        with pytest.raises(ContractionError, match="efficiency"):
            CalibrationProfile(
                version=CALIBRATION_VERSION, coefficients=coeff
            )


#: seed workloads the traffic prediction is sanity-gated on
TRAFFIC_WORKLOADS = [
    ("nips", 1, 0.2),
    ("chicago", 2, 0.2),
    ("uracil", 3, 0.2),
]


class TestTrafficRankSanity:
    @pytest.mark.parametrize(
        "dataset,n_modes,scale", TRAFFIC_WORKLOADS,
        ids=[f"{d}-{n}" for d, n, _ in TRAFFIC_WORKLOADS],
    )
    def test_predicted_stage_ranks_track_measured(
        self, dataset, n_modes, scale
    ):
        case = make_case(dataset, n_modes, scale=scale, seed=0)
        res = contract(
            case.x, case.y, case.cx, case.cy,
            method="sparta", swap_larger_to_y=False,
        )
        measured = defaultdict(int)
        for rec in res.profile.traffic:
            measured[rec.stage.value] += rec.nbytes
        stats = contraction_stats(
            case.x, case.y,
            cached_plan(case.x, case.y, case.cx, case.cy),
        )
        predicted = MODEL.predict_traffic(stats)
        assert set(predicted) == set(measured)
        # the hottest stage must agree, and no stage may be mispriced
        # by more than 4x in either direction
        assert max(predicted, key=predicted.get) == \
            max(measured, key=measured.get)
        for stage, nbytes in measured.items():
            assert nbytes / 4 <= predicted[stage] <= nbytes * 4, stage


class TestStatsRecord:
    def test_stats_roundtrip_lossless(self):
        case = make_case("nips", 1, scale=0.1, seed=0)
        stats = contraction_stats(
            case.x, case.y,
            cached_plan(case.x, case.y, case.cx, case.cy),
        )
        clone = ContractionStats.from_dict(stats.to_dict())
        assert clone == stats
        assert clone.fingerprint() == stats.fingerprint()

    def test_exact_groups_measures_distinct_keys(self):
        case = make_case("nips", 1, scale=0.1, seed=0)
        plan = cached_plan(case.x, case.y, case.cx, case.cy)
        approx = contraction_stats(case.x, case.y, plan)
        exact = contraction_stats(case.x, case.y, plan, exact=True)
        assert exact.exact_groups and not approx.exact_groups
        assert 0 < exact.groups <= approx.groups
