"""Decision-regression corpus: the planner's choices are pinned.

``decision_snapshots.json`` holds ~20 frozen operand-statistic records
(registry workloads incl. the uracil 3-mode shape, sub-20k-product
smalls, dense-workspace and hash regimes, the max_workers and
sort_output axes) with the golden :class:`PlanDecision` each produced
under the committed calibration. Decisions are pure functions of
(stats, coefficients), so the snapshots must reproduce bit-for-bit on
any machine — a re-fit that flips one fails here and must refresh the
corpus deliberately (``scripts/calibrate_planner.py
--write-snapshots``).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.core.htycache import LRUCache
from repro.planner import (
    ContractionStats,
    CostModel,
    PlanDecision,
    choose_plan,
    default_calibration,
)

SNAPSHOT_PATH = Path(__file__).with_name("decision_snapshots.json")

_DOC = json.loads(SNAPSHOT_PATH.read_text())
CASES = {case["name"]: case for case in _DOC["cases"]}


@pytest.fixture(autouse=True)
def _default_codegen_env(monkeypatch):
    # the accumulator prediction consults the codegen kill-switch; the
    # corpus is recorded under the default environment (codegen on)
    monkeypatch.delenv("REPRO_NO_CODEGEN", raising=False)


def _canonical(d: dict) -> dict:
    """JSON round-trip: tuples become lists, as stored on disk."""
    return json.loads(json.dumps(d))


def _replay(case: dict) -> PlanDecision:
    return choose_plan(
        ContractionStats.from_dict(case["stats"]),
        model=CostModel(),
        max_workers=case["max_workers"],
        sort_output=case["sort_output"],
        cache=LRUCache(maxsize=4),
    )


class TestSnapshotCorpus:
    def test_corpus_shape(self):
        assert _DOC["version"] == default_calibration().version
        assert len(CASES) >= 20
        # both routing regimes are represented
        engines = {
            c["decision"]["chosen"]["engine"] for c in CASES.values()
        }
        assert "serial" in engines and "thread" in engines

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_decision_reproduces_golden_snapshot(self, name):
        case = CASES[name]
        decision = _replay(case)
        assert _canonical(decision.to_dict()) == case["decision"], (
            f"{name}: decision drifted from the committed snapshot — "
            "if the calibration was deliberately re-fitted, run "
            "scripts/calibrate_planner.py --write-snapshots"
        )

    def test_uracil_3mode_routes_serial(self):
        # PR 3's benchmarks showed thread workers regress this shape;
        # the fitted profile must keep it on the fused serial engine
        # (the BENCH_PR7 gate holds it to >= 1.0x vs serial).
        for name in ("uracil-3", "uracil-3-w8"):
            assert CASES[name]["decision"]["chosen"]["engine"] == \
                "serial", name

    def test_sub20k_product_cases_route_serial(self):
        for name in ("small-3d", "small-4d", "tiny-matmul"):
            case = CASES[name]
            assert case["stats"]["nnz_x"] * case["stats"]["nnz_y"] \
                // max(case["stats"]["groups"], 1) < 20_000
            assert case["decision"]["chosen"]["engine"] == "serial", name

    def test_swap_candidates_always_ineligible(self):
        for name, case in CASES.items():
            swap_rows = [
                row for row in case["decision"]["table"]
                if row["candidate"]["swap"]
            ]
            assert swap_rows, name
            assert all(not row["eligible"] for row in swap_rows), name
            assert not case["decision"]["chosen"]["swap"], name

    def test_snapshot_roundtrip_through_plandecision(self):
        case = CASES["uracil-3"]
        decision = PlanDecision.from_dict(case["decision"])
        assert _canonical(decision.to_dict()) == case["decision"]


class TestDecisionMechanics:
    def test_cache_hit_marks_cached(self):
        case = CASES["nips-1"]
        stats = ContractionStats.from_dict(case["stats"])
        cache = LRUCache(maxsize=4)
        first = choose_plan(stats, max_workers=4, cache=cache)
        second = choose_plan(stats, max_workers=4, cache=cache)
        assert not first.cached
        assert second.cached
        assert dataclasses.replace(second, cached=False) == first

    def test_cache_keyed_by_calibration_digest(self):
        from repro.planner import builtin_calibration

        case = CASES["nips-1"]
        stats = ContractionStats.from_dict(case["stats"])
        cache = LRUCache(maxsize=4)
        choose_plan(stats, max_workers=4, cache=cache)
        other = choose_plan(
            stats,
            model=CostModel(calibration=builtin_calibration()),
            max_workers=4,
            cache=cache,
        )
        assert not other.cached  # different digest, different entry

    def test_explain_lists_every_candidate(self):
        decision = _replay(CASES["chicago-2"])
        text = decision.explain()
        assert "chosen" in text
        assert "ineligible: swap changes Table-2 operand roles" in text
        for row in decision.table:
            assert row.candidate.label in text

    def test_ties_resolve_to_serial(self):
        # max_workers=1 collapses the ladder: only serial (and its
        # ineligible swap twin) remain
        case = CASES["small-3d"]
        decision = choose_plan(
            ContractionStats.from_dict(case["stats"]),
            max_workers=1,
            cache=None,
        )
        assert decision.chosen.engine == "serial"
        assert len(decision.table) == 2
