"""Tests for the SpGEMM substrate."""

import numpy as np
import pytest

from repro.baselines import CSRMatrix, spgemm
from repro.core import contract
from repro.errors import ContractionError, ShapeError
from repro.tensor import SparseTensor, random_tensor


@pytest.fixture
def ab():
    return (
        random_tensor((12, 9), 40, seed=111),
        random_tensor((9, 15), 50, seed=112),
    )


class TestCSR:
    def test_round_trip(self, ab):
        a, _ = ab
        csr = CSRMatrix.from_coo(a)
        assert csr.to_coo().allclose(a)
        assert csr.nnz == a.nnz

    def test_to_dense(self, ab):
        a, _ = ab
        assert CSRMatrix.from_coo(a).to_dense() == pytest.approx(
            a.to_dense()
        )

    def test_row_access(self, ab):
        a, _ = ab
        csr = CSRMatrix.from_coo(a)
        dense = a.to_dense()
        for i in range(a.shape[0]):
            cols, vals = csr.row(i)
            assert np.count_nonzero(dense[i]) == cols.shape[0]
            for c, v in zip(cols, vals):
                assert dense[i, int(c)] == pytest.approx(float(v))

    def test_coalesces_duplicates(self):
        t = SparseTensor([[0, 0], [0, 0]], [1.0, 2.0], (2, 2))
        csr = CSRMatrix.from_coo(t)
        assert csr.nnz == 1
        assert csr.to_dense()[0, 0] == pytest.approx(3.0)

    def test_rejects_higher_order(self):
        t = SparseTensor([[0, 0, 0]], [1.0], (2, 2, 2))
        with pytest.raises(ShapeError):
            CSRMatrix.from_coo(t)


class TestSpGEMM:
    @pytest.mark.parametrize("accumulator", ["hash", "spa"])
    def test_matches_dense(self, ab, accumulator):
        a, b = ab
        c = spgemm(
            CSRMatrix.from_coo(a),
            CSRMatrix.from_coo(b),
            accumulator=accumulator,
        )
        assert c.to_dense() == pytest.approx(a.to_dense() @ b.to_dense())

    def test_matches_scipy(self, ab):
        import scipy.sparse as sp

        a, b = ab
        c = spgemm(CSRMatrix.from_coo(a), CSRMatrix.from_coo(b))
        ref = sp.csr_matrix(a.to_dense()) @ sp.csr_matrix(b.to_dense())
        assert c.to_dense() == pytest.approx(ref.toarray())

    def test_matches_order2_contraction(self, ab):
        a, b = ab
        c = spgemm(CSRMatrix.from_coo(a), CSRMatrix.from_coo(b))
        res = contract(a, b, (1,), (0,), method="sparta")
        assert res.tensor.allclose(c.to_coo())

    def test_dimension_mismatch(self, ab):
        a, _ = ab
        with pytest.raises(ContractionError):
            spgemm(CSRMatrix.from_coo(a), CSRMatrix.from_coo(a))

    def test_empty_result(self):
        a = SparseTensor([[0, 0]], [1.0], (2, 3))
        b = SparseTensor([[2, 0]], [1.0], (3, 2))
        c = spgemm(CSRMatrix.from_coo(a), CSRMatrix.from_coo(b))
        assert c.nnz == 0
        assert c.shape == (2, 2)

    def test_identity(self):
        n = 6
        eye = SparseTensor.from_dense(np.eye(n))
        a = random_tensor((n, n), 12, seed=113)
        c = spgemm(CSRMatrix.from_coo(a), CSRMatrix.from_coo(eye))
        assert c.to_coo().allclose(a)

    def test_output_columns_sorted(self, ab):
        a, b = ab
        c = spgemm(CSRMatrix.from_coo(a), CSRMatrix.from_coo(b))
        for i in range(c.shape[0]):
            cols, _ = c.row(i)
            assert np.all(np.diff(cols) > 0)
