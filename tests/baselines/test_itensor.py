"""Tests for the block-sparse (ITensor-style) contraction engine."""

import numpy as np
import pytest

from repro.baselines import block_contract, element_flops
from repro.core import contract
from repro.errors import ContractionError
from repro.tensor import BlockSparseTensor


def _random_block_tensor(shape, block, fraction, seed):
    rng = np.random.default_rng(seed)
    t = BlockSparseTensor(shape, block)
    total = int(np.prod(t.grid))
    chosen = rng.choice(
        total, size=max(1, int(total * fraction)), replace=False
    )
    for flat in chosen:
        key = tuple(int(k) for k in np.unravel_index(int(flat), t.grid))
        t.set_block(key, rng.standard_normal(block))
    return t


@pytest.fixture
def pair():
    x = _random_block_tensor((8, 6, 4), (2, 3, 2), 0.5, seed=101)
    y = _random_block_tensor((4, 6, 10), (2, 3, 2), 0.5, seed=102)
    # contract X modes (2, 1) with Y modes (0, 1)
    return x, y, (2, 1), (0, 1)


class TestCorrectness:
    def test_matches_dense_tensordot(self, pair):
        x, y, cx, cy = pair
        res = block_contract(x, y, cx, cy)
        ref = np.tensordot(x.to_dense(), y.to_dense(), axes=(cx, cy))
        assert res.tensor.to_dense() == pytest.approx(ref)

    def test_matches_element_engine(self, pair):
        x, y, cx, cy = pair
        res = block_contract(x, y, cx, cy)
        el = contract(
            x.to_coo(), y.to_coo(), cx, cy, method="vectorized"
        )
        assert el.tensor.allclose(
            res.tensor.to_coo().coalesce().prune(1e-12),
            rtol=1e-9, atol=1e-11,
        )

    def test_disjoint_blocks_empty_output(self):
        x = BlockSparseTensor((4, 4), (2, 2))
        x.set_block((0, 0), np.ones((2, 2)))
        y = BlockSparseTensor((4, 4), (2, 2))
        y.set_block((1, 1), np.ones((2, 2)))
        res = block_contract(x, y, (1,), (0,))
        assert res.tensor.num_blocks == 0
        assert res.block_pairs == 0

    def test_accumulation_across_contract_blocks(self):
        rng = np.random.default_rng(5)
        x = BlockSparseTensor((2, 8), (2, 2))
        y = BlockSparseTensor((8, 2), (2, 2))
        for k in range(4):
            x.set_block((0, k), rng.standard_normal((2, 2)))
            y.set_block((k, 0), rng.standard_normal((2, 2)))
        res = block_contract(x, y, (1,), (0,))
        ref = x.to_dense() @ y.to_dense()
        assert res.tensor.to_dense() == pytest.approx(ref)
        assert res.block_pairs == 4


class TestValidation:
    def test_extent_mismatch(self, pair):
        x, y, _, _ = pair
        with pytest.raises(ContractionError):
            block_contract(x, y, (0,), (0,))

    def test_block_shape_mismatch(self):
        x = BlockSparseTensor((4, 4), (2, 2))
        x.set_block((0, 0), np.ones((2, 2)))
        y = BlockSparseTensor((4, 4), (4, 4))
        y.set_block((0, 0), np.ones((4, 4)))
        with pytest.raises(ContractionError):
            block_contract(x, y, (1,), (0,))

    def test_no_contract_modes(self, pair):
        x, y, _, _ = pair
        with pytest.raises(ContractionError):
            block_contract(x, y, (), ())

    def test_duplicate_modes(self, pair):
        x, y, _, _ = pair
        with pytest.raises(ContractionError):
            block_contract(x, y, (1, 1), (0, 1))


class TestWorkAccounting:
    def test_flops_formula(self):
        x = BlockSparseTensor((2, 4), (2, 2))
        x.set_block((0, 0), np.ones((2, 2)))
        y = BlockSparseTensor((4, 2), (2, 2))
        y.set_block((0, 0), np.ones((2, 2)))
        res = block_contract(x, y, (1,), (0,))
        # one pair: 2 * 2 * 2 * 2 = 16 multiply-adds
        assert res.flops == 16
        assert res.block_pairs == 1

    def test_element_flops(self):
        assert element_flops(10) == 20

    def test_block_engine_wastes_work_on_sparse_blocks(self):
        # Blocks that are 90% zero: element-wise work is ~1% of dense.
        rng = np.random.default_rng(9)
        x = BlockSparseTensor((4, 8), (2, 2))
        y = BlockSparseTensor((8, 4), (2, 2))
        for k in range(4):
            bx = rng.standard_normal((2, 2))
            bx[rng.random((2, 2)) < 0.75] = 0.0
            by = rng.standard_normal((2, 2))
            by[rng.random((2, 2)) < 0.75] = 0.0
            x.set_block((0, k), bx)
            y.set_block((k, 0), by)
        res = block_contract(x, y, (1,), (0,))
        el = contract(
            x.to_coo(), y.to_coo(), (1,), (0,), method="vectorized"
        )
        assert res.flops > element_flops(
            el.profile.counters["products"]
        )
