"""Smoke tests for the example scripts (the fast ones run in-process)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "all engines agree" in out
    assert "matches numpy.tensordot" in out


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 6
    for script in scripts:
        text = script.read_text()
        assert text.startswith('"""'), script.name
        assert "def main()" in text, script.name
        assert '__name__ == "__main__"' in text, script.name


@pytest.mark.parametrize("name", ["graph_semiring.py"])
def test_semiring_example(name, capsys):
    _run(name)
    out = capsys.readouterr().out
    assert "0 violations" in out
