"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.tensor import SparseTensor, random_tensor


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def _shm_segments():
    """Names of live POSIX shared-memory segments (None if unsupported)."""
    try:
        return set(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return None


#: segment-name prefixes the leak check owns: ``psm_`` is the default
#: :mod:`multiprocessing.shared_memory` prefix (pool-exported blocks),
#: ``sptcreg`` is the serve layer's operand registry
#: (:data:`repro.serve.registry.REGISTRY_SHM_PREFIX`)
TRACKED_SHM_PREFIXES = ("psm_", "sptcreg")


@pytest.fixture
def shm_leak_check():
    """Fail the test if it leaks a shared-memory segment.

    Snapshots ``/dev/shm`` before the test and asserts that no new
    segment under any :data:`TRACKED_SHM_PREFIXES` prefix survives it —
    the parent pool must close *and unlink* every exported block even
    when workers are killed mid-run, and the serve layer's operand
    registry must unlink every pinned segment on unpin/eviction/close
    even when clients crash. Cleanup is asynchronous (killed children,
    queue feeder threads), so the check retries briefly before
    declaring a leak.
    """
    before = _shm_segments()
    yield
    if before is None:  # platform without /dev/shm: nothing to check
        return
    leaked = set()
    for _ in range(40):
        after = _shm_segments() or set()
        leaked = {
            name
            for name in after - before
            if name.startswith(TRACKED_SHM_PREFIXES)
        }
        if not leaked:
            return
        time.sleep(0.05)
    assert not leaked, (
        f"test leaked shared-memory segments: {sorted(leaked)}"
    )


@pytest.fixture
def small_pair():
    """A small (X, Y) contraction pair with known-good dense reference."""
    x = random_tensor((6, 5, 4, 3), 40, seed=1)
    y = random_tensor((4, 3, 7, 8), 50, seed=2)
    return x, y, (2, 3), (0, 1)


@pytest.fixture
def tiny_tensor():
    """The paper's Figure-1 style walk-through tensor."""
    indices = [
        (0, 0, 1, 2),
        (0, 1, 0, 0),
        (1, 0, 0, 0),
        (1, 1, 1, 1),
    ]
    values = [1.0, 2.0, 3.0, 4.0]
    return SparseTensor(indices, values, (2, 2, 2, 3))
