"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import SparseTensor, random_tensor


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_pair():
    """A small (X, Y) contraction pair with known-good dense reference."""
    x = random_tensor((6, 5, 4, 3), 40, seed=1)
    y = random_tensor((4, 3, 7, 8), 50, seed=2)
    return x, y, (2, 3), (0, 1)


@pytest.fixture
def tiny_tensor():
    """The paper's Figure-1 style walk-through tensor."""
    indices = [
        (0, 0, 1, 2),
        (0, 1, 0, 0),
        (1, 0, 0, 0),
        (1, 1, 1, 1),
    ]
    values = [1.0, 2.0, 3.0, 4.0]
    return SparseTensor(indices, values, (2, 2, 2, 3))
