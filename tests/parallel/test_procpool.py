"""Tests for the shared-memory process pool backend."""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

import repro.parallel.procpool as procpool
from repro.core import contract
from repro.core.common import prepare_x
from repro.core.htycache import HtYCache, cached_plan
from repro.core.profile import RunProfile
from repro.errors import ParallelError
from repro.hashtable.tensor_table import HashTensor
from repro.parallel import (
    attach_operands,
    export_operands,
    parallel_sparta,
    resolve_start_method,
)
from repro.tensor import random_tensor_fibered

HAVE_FORK = "fork" in mp.get_all_start_methods()


@pytest.fixture
def pair():
    x = random_tensor_fibered((10, 12, 12), 500, 1, 24, seed=41)
    y = random_tensor_fibered((12, 12, 8), 800, 2, 60, seed=42)
    return x, y


@pytest.fixture
def serial(pair):
    x, y = pair
    return contract(
        x, y, (1, 2), (0, 1), method="sparta", swap_larger_to_y=False
    )


def assert_bit_identical(z, ref):
    zs, rs = z.sort(), ref.sort()
    np.testing.assert_array_equal(zs.indices, rs.indices)
    np.testing.assert_array_equal(zs.values, rs.values)


class TestCorrectness:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_serial(self, pair, serial, workers):
        x, y = pair
        par = parallel_sparta(
            x, y, (1, 2), (0, 1), threads=workers, backend="process"
        )
        assert par.backend == "process"
        assert par.wall_seconds > 0.0
        assert_bit_identical(par.result.tensor, serial.tensor)

    @pytest.mark.parametrize(
        "method", sorted(mp.get_all_start_methods())
    )
    def test_every_start_method(self, pair, serial, method):
        x, y = pair
        par = parallel_sparta(
            x, y, (1, 2), (0, 1),
            threads=2, backend="process", start_method=method,
        )
        assert_bit_identical(par.result.tensor, serial.tensor)

    def test_empty_input_no_pool(self):
        from repro.tensor import SparseTensor

        x = SparseTensor.empty((3, 4))
        y = SparseTensor.empty((4, 5))
        par = parallel_sparta(
            x, y, (1,), (0,), threads=4, backend="process"
        )
        assert par.result.nnz == 0
        assert len(par.thread_stats) == 4
        assert par.load_imbalance == 1.0

    def test_worker_stats_cover_all_nnz(self, pair):
        x, y = pair
        par = parallel_sparta(
            x, y, (1, 2), (0, 1), threads=3, backend="process"
        )
        assert sum(s.nnz_x for s in par.thread_stats) == x.nnz
        assert len(par.thread_stats) == 3

    def test_resolve_start_method(self):
        assert resolve_start_method() in mp.get_all_start_methods()
        assert resolve_start_method("spawn") == "spawn"


class TestSharedOperands:
    def test_export_attach_roundtrip(self, pair):
        x, y = pair
        plan = cached_plan(x, y, (1, 2), (0, 1))
        px = prepare_x(x, plan, RunProfile("test"))
        hty = HashTensor.from_coo(y, plan.cy)
        owned = []  # created blocks (close + unlink)
        attached = []  # worker-side attachments (close only)
        apx = ahty = None
        try:
            spec = export_operands(px, hty, owned)
            apx, ahty = attach_operands(spec, attached)
            np.testing.assert_array_equal(apx.ptr, px.ptr)
            np.testing.assert_array_equal(apx.fx_rows, px.fx_rows)
            np.testing.assert_array_equal(apx.cx_ln, px.cx_ln)
            np.testing.assert_array_equal(apx.values, px.values)
            np.testing.assert_array_equal(ahty.values, hty.values)
            assert ahty.shared is True
            assert hty.shared is False  # source never rebound
            key = hty.table.keys[0]
            assert ahty.table.lookup(key) == hty.table.lookup(key)
        finally:
            del apx, ahty
            for blk in attached:
                blk.close()
            for blk in owned:
                blk.close()
                blk.unlink()

    def test_shared_hty_never_served_from_cache(self, pair):
        # A shm-backed HtY placed in the cache (e.g. by a buggy caller)
        # must be rebuilt, not served: its buffers dangle once the pool
        # unlinks the blocks.
        _, y = pair
        cache = HtYCache()
        hty, hit = cache.get_or_build(y, (0, 1))
        assert not hit
        hty.shared = True  # simulate a shm-backed entry
        rebuilt, hit = cache.get_or_build(y, (0, 1))
        assert not hit
        assert rebuilt is not hty
        assert rebuilt.shared is False
        # The replacement is cached normally afterwards.
        again, hit = cache.get_or_build(y, (0, 1))
        assert hit and again is rebuilt

    def test_process_backend_leaves_cache_usable(self, pair, serial):
        x, y = pair
        cache = HtYCache()
        par1 = parallel_sparta(
            x, y, (1, 2), (0, 1),
            threads=2, backend="process", hty_cache=cache,
        )
        # Second run hits the cache; the cached HtY must still be live
        # (the pool copied it into shm instead of rebinding it).
        par2 = parallel_sparta(
            x, y, (1, 2), (0, 1),
            threads=2, backend="process", hty_cache=cache,
        )
        assert cache.stats.hits == 1
        assert_bit_identical(par1.result.tensor, serial.tensor)
        assert_bit_identical(par2.result.tensor, serial.tensor)


@pytest.mark.skipif(
    not HAVE_FORK,
    reason="crash injection monkeypatches the kernel, needs fork",
)
class TestFailureModes:
    def test_worker_exception_raises_parallel_error(
        self, pair, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise RuntimeError("injected kernel failure")

        monkeypatch.setattr(procpool, "fused_compute", boom)
        x, y = pair
        with pytest.raises(ParallelError, match="injected kernel failure"):
            parallel_sparta(
                x, y, (1, 2), (0, 1),
                threads=2, backend="process", start_method="fork",
            )

    def test_worker_hard_death_raises_parallel_error(
        self, pair, monkeypatch
    ):
        def die(*args, **kwargs):
            os._exit(3)

        monkeypatch.setattr(procpool, "fused_compute", die)
        x, y = pair
        with pytest.raises(ParallelError, match="died"):
            parallel_sparta(
                x, y, (1, 2), (0, 1),
                threads=2, backend="process", start_method="fork",
            )
