"""Property test: the parallel executor agrees with the vectorized
engine on arbitrary fibered inputs and thread counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import contract
from repro.parallel import parallel_sparta
from repro.tensor import SparseTensor


@st.composite
def fibered_pair(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    c1 = draw(st.integers(2, 8))
    c2 = draw(st.integers(2, 8))
    fx = draw(st.integers(2, 8))
    fy = draw(st.integers(2, 8))
    nnz_x = draw(st.integers(0, 60))
    nnz_y = draw(st.integers(0, 80))

    def build(shape, nnz):
        idx = np.column_stack(
            [rng.integers(0, d, size=nnz) for d in shape]
        ) if nnz else np.empty((0, len(shape)), dtype=np.int64)
        return SparseTensor(idx, rng.standard_normal(nnz), shape)

    x = build((fx, c1, c2), nnz_x)
    y = build((c1, c2, fy), nnz_y)
    threads = draw(st.integers(1, 6))
    return x, y, threads


@settings(max_examples=25, deadline=None)
@given(fibered_pair())
def test_parallel_matches_vectorized(case):
    x, y, threads = case
    par = parallel_sparta(x, y, (1, 2), (0, 1), threads=threads)
    ref = contract(x, y, (1, 2), (0, 1), method="vectorized")
    assert par.result.tensor.allclose(ref.tensor)
    assert sum(s.nnz_x for s in par.thread_stats) == x.nnz


@settings(max_examples=15, deadline=None)
@given(fibered_pair())
def test_thread_count_does_not_change_output(case):
    x, y, _ = case
    outs = [
        parallel_sparta(x, y, (1, 2), (0, 1), threads=t).result.tensor
        for t in (1, 3, 5)
    ]
    assert outs[0].allclose(outs[1])
    assert outs[1].allclose(outs[2])
