"""Traffic conservation: parallel profiles charge exactly serial traffic.

Every Table-2 traffic record of the parallel engine is derived from run
totals (nnz_x, products, created entries, probe counts) that partition
across workers, so the merged profile must charge the *same bytes* per
(object, stage, kind, pattern) cell as the serial fused engine — for any
backend and any worker count. A drift here would silently skew the
heterogeneous-memory simulation for parallel runs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

import pytest

from repro.core import contract
from repro.core.profile import RunProfile
from repro.parallel import parallel_sparta
from repro.tensor import random_tensor_fibered


def traffic_by_cell(profile: RunProfile) -> Dict[Tuple, int]:
    """Total bytes per (object, stage, kind, pattern) cell."""
    cells: Dict[Tuple, int] = defaultdict(int)
    for rec in profile.traffic:
        cells[(rec.obj, rec.stage, rec.kind, rec.pattern)] += rec.nbytes
    return dict(cells)


@pytest.fixture(scope="module")
def pair():
    x = random_tensor_fibered((12, 14, 16, 18), 1200, 2, 48, seed=91)
    y = random_tensor_fibered((16, 18, 10, 12), 2000, 2, 200, seed=92)
    return x, y


@pytest.fixture(scope="module")
def serial_cells(pair):
    x, y = pair
    serial = contract(
        x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
    )
    return traffic_by_cell(serial.profile)


class TestTrafficConservation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_parallel_traffic_equals_serial(
        self, pair, serial_cells, backend, workers
    ):
        x, y = pair
        par = parallel_sparta(
            x, y, (2, 3), (0, 1), threads=workers, backend=backend
        )
        cells = traffic_by_cell(par.result.profile)
        assert cells.keys() == serial_cells.keys()
        for cell, nbytes in serial_cells.items():
            assert cells[cell] == nbytes, (
                f"{backend}/{workers}w drifts on {cell}: "
                f"{cells[cell]} != serial {nbytes}"
            )

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_probe_counters_equal_serial(self, pair, backend):
        x, y = pair
        serial = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )
        par = parallel_sparta(
            x, y, (2, 3), (0, 1), threads=3, backend=backend
        )
        for counter in ("hash_probes", "search_probes", "products"):
            assert (
                par.result.profile.counters.get(counter)
                == serial.profile.counters.get(counter)
            ), counter

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("parallel_stage1", [False, True])
    @pytest.mark.parametrize("merge_output", [False, True])
    def test_stage15_flags_keep_traffic_and_probes(
        self, pair, serial_cells, backend, parallel_stage1, merge_output
    ):
        # The parallel stage-1 build and merge-based stage-5 sort must
        # charge byte-exactly the serial Table-2 cells and the serial
        # hash_probes, in every flag combination on both backends.
        x, y = pair
        serial = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )
        par = parallel_sparta(
            x, y, (2, 3), (0, 1),
            threads=3, backend=backend,
            parallel_stage1=parallel_stage1, merge_output=merge_output,
        )
        cells = traffic_by_cell(par.result.profile)
        assert cells == serial_cells
        for counter in ("hash_probes", "search_probes", "products"):
            assert (
                par.result.profile.counters.get(counter)
                == serial.profile.counters.get(counter)
            ), counter


class TestStageAccounting:
    def test_serial_stage_times_sum_to_total(self, pair):
        x, y = pair
        serial = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )
        prof = serial.profile
        assert sum(prof.stage_seconds.values()) == pytest.approx(
            prof.total_seconds
        )

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_stages_all_present_and_bounded(self, pair, backend):
        from repro.core.stages import Stage

        x, y = pair
        par = parallel_sparta(
            x, y, (2, 3), (0, 1), threads=3, backend=backend
        )
        prof = par.result.profile
        expected = {
            Stage.INPUT_PROCESSING,
            Stage.INDEX_SEARCH,
            Stage.ACCUMULATION,
            Stage.WRITEBACK,
            Stage.OUTPUT_SORTING,
        }
        assert expected <= set(prof.stage_seconds)
        # Parent-side wall-clock stages (1, 4, 5) can never exceed the
        # end-to-end wall time of the call.
        parent_side = (
            prof.stage_seconds[Stage.INPUT_PROCESSING]
            + prof.stage_seconds[Stage.WRITEBACK]
            + prof.stage_seconds[Stage.OUTPUT_SORTING]
        )
        assert parent_side <= par.wall_seconds + 1e-6

    def test_process_backend_reports_stage1_worker_seconds(self, pair):
        x, y = pair
        par = parallel_sparta(
            x, y, (2, 3), (0, 1), threads=2, backend="process"
        )
        assert all(s.stage1_seconds >= 0.0 for s in par.thread_stats)
        assert sum(s.stage1_seconds for s in par.thread_stats) > 0.0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_stage_seconds_are_wall_clock_not_summed(self, pair, backend):
        # Regression: the compute stages used to charge the *sum* of
        # per-worker timers, so with N workers the profile's stage total
        # could exceed wall time by up to Nx. Stages are now parent
        # wall-clock intervals, so their sum must stay within the
        # end-to-end wall time (small tolerance for clock jitter).
        x, y = pair
        par = parallel_sparta(
            x, y, (2, 3), (0, 1), threads=4, backend=backend
        )
        prof = par.result.profile
        assert sum(prof.stage_seconds.values()) <= 1.1 * par.wall_seconds
