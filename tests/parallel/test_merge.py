"""Merge-based output sorting must equal a stable sort, byte for byte."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.parallel.merge import merge_fused_runs, merge_sorted_runs


@dataclass
class FakeRun:
    """Stand-in for FusedRange: just the three output arrays."""

    out_fgrp: np.ndarray
    out_fy: np.ndarray
    out_vals: np.ndarray


def make_run(fgrp, fy):
    fgrp = np.asarray(fgrp, dtype=np.int64)
    fy = np.asarray(fy, dtype=np.int64)
    vals = (fgrp * 1000 + fy).astype(np.float64)
    return FakeRun(fgrp, fy, vals)


class TestMergeSortedRuns:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equals_stable_sort_of_concatenation(self, k, seed):
        rng = np.random.default_rng(seed * 10 + k)
        runs = [
            np.sort(rng.integers(0, 200, size=int(rng.integers(0, 60))))
            .astype(np.int64)
            for _ in range(k)
        ]
        merged, gather = merge_sorted_runs(runs)
        cat = np.concatenate(runs) if runs else np.empty(0, np.int64)
        ref_perm = np.argsort(cat, kind="stable")
        np.testing.assert_array_equal(merged, cat[ref_perm])
        np.testing.assert_array_equal(gather, ref_perm)

    def test_empty(self):
        merged, gather = merge_sorted_runs([])
        assert merged.size == 0 and gather.size == 0

    def test_stability_ties_keep_run_order(self):
        a = np.array([5, 5], dtype=np.int64)
        b = np.array([5], dtype=np.int64)
        _, gather = merge_sorted_runs([a, b])
        np.testing.assert_array_equal(gather, [0, 1, 2])


def reference_sorted(runs):
    fgrp = np.concatenate([r.out_fgrp for r in runs])
    fy = np.concatenate([r.out_fy for r in runs])
    vals = np.concatenate([r.out_vals for r in runs])
    perm = np.lexsort((fy, fgrp))
    return fgrp[perm], fy[perm], vals[perm]


class TestMergeFusedRuns:
    def test_disjoint_ranges_take_concat_path(self):
        runs = [
            make_run([0, 0, 1], [2, 5, 0]),
            make_run([2, 3], [1, 1]),
            make_run([5, 5], [0, 9]),
        ]
        fgrp, fy, vals, presorted, path = merge_fused_runs(runs, (10,))
        assert path == "concat" and presorted
        rg, ry, rv = reference_sorted(runs)
        np.testing.assert_array_equal(fgrp, rg)
        np.testing.assert_array_equal(fy, ry)
        np.testing.assert_array_equal(vals, rv)

    def test_overlapping_runs_take_kway_path(self):
        runs = [
            make_run([0, 2, 4], [1, 1, 1]),
            make_run([1, 3, 5], [0, 0, 0]),
            make_run([0, 5], [9, 9]),
        ]
        fgrp, fy, vals, presorted, path = merge_fused_runs(runs, (10,))
        assert path == "kway" and presorted
        rg, ry, rv = reference_sorted(runs)
        np.testing.assert_array_equal(fgrp, rg)
        np.testing.assert_array_equal(fy, ry)
        np.testing.assert_array_equal(vals, rv)

    def test_unsorted_run_falls_back_to_lexsort(self):
        runs = [make_run([3, 1], [0, 0])]
        fgrp, fy, vals, presorted, path = merge_fused_runs(runs, (10,))
        assert path == "lexsort" and not presorted
        np.testing.assert_array_equal(fgrp, [3, 1])

    def test_key_overflow_falls_back_to_lexsort(self):
        runs = [make_run([2**40], [0])]
        _, _, _, presorted, path = merge_fused_runs(runs, (2**40,))
        assert path == "lexsort" and not presorted

    def test_empty_runs(self):
        fgrp, fy, vals, presorted, path = merge_fused_runs([], (10,))
        assert path == "empty" and presorted
        assert fgrp.size == fy.size == vals.size == 0
        runs = [make_run([], [])]
        _, _, _, presorted, path = merge_fused_runs(runs, (10,))
        assert path == "empty" and presorted

    @pytest.mark.parametrize("seed", range(5))
    def test_random_overlapping_runs_match_lexsort(self, seed):
        rng = np.random.default_rng(seed)
        runs = []
        for _ in range(int(rng.integers(2, 6))):
            n = int(rng.integers(1, 50))
            fgrp = np.sort(rng.integers(0, 30, size=n)).astype(np.int64)
            # fy sorted within each fgrp segment, unique per (fgrp, fy)
            fy = np.zeros(n, dtype=np.int64)
            for g in np.unique(fgrp):
                m = fgrp == g
                fy[m] = np.sort(
                    rng.choice(100, size=int(m.sum()), replace=False)
                )
            runs.append(make_run(fgrp, fy))
        fgrp, fy, vals, presorted, path = merge_fused_runs(runs, (100,))
        assert presorted and path in ("concat", "kway")
        rg, ry, rv = reference_sorted(runs)
        np.testing.assert_array_equal(fgrp, rg)
        np.testing.assert_array_equal(fy, ry)
        np.testing.assert_array_equal(vals, rv)


# ---------------------------------------------------------------------------
# Edge cases, byte-identical between in-core arrays and mmapped run files
# ---------------------------------------------------------------------------


def _edge_case_runs(which):
    """Key-run families the k-way merge must survive unchanged."""
    rng = np.random.default_rng(hash(which) % (2**32))
    if which == "single":
        return [np.sort(rng.integers(0, 500, size=300)).astype(np.int64)]
    if which == "empty_mixed":
        return [
            np.empty(0, dtype=np.int64),
            np.sort(rng.integers(0, 100, size=40)).astype(np.int64),
            np.empty(0, dtype=np.int64),
            np.sort(rng.integers(0, 100, size=25)).astype(np.int64),
            np.empty(0, dtype=np.int64),
        ]
    if which == "all_empty":
        return [np.empty(0, dtype=np.int64) for _ in range(4)]
    if which == "all_duplicates":
        return [
            np.full(37, 7, dtype=np.int64),
            np.full(11, 7, dtype=np.int64),
            np.full(53, 7, dtype=np.int64),
        ]
    if which == "wildly_unequal":
        return [
            np.sort(rng.integers(0, 10_000, size=20_000)).astype(np.int64),
            np.array([5000], dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.sort(rng.integers(0, 10_000, size=3)).astype(np.int64),
            np.sort(rng.integers(0, 10_000, size=997)).astype(np.int64),
        ]
    raise AssertionError(which)


EDGE_CASES = (
    "single", "empty_mixed", "all_empty", "all_duplicates",
    "wildly_unequal",
)


def _spill_key_runs(runs, path):
    """Write key runs to one run file, read back as memmap views."""
    from repro.ooc import RunFileReader, RunFileWriter

    writer = RunFileWriter(path)
    for keys in runs:
        writer.append_run({"keys": keys})
    writer.close()
    reader = RunFileReader(path)
    return reader, [reader.run(i)["keys"] for i in range(reader.num_runs)]


class TestMergeEdgeCasesMmap:
    """merge_sorted_runs: in-core vs run-file inputs, byte for byte."""

    @pytest.mark.parametrize("which", EDGE_CASES)
    def test_in_core_reference(self, which):
        runs = _edge_case_runs(which)
        merged, gather = merge_sorted_runs(runs)
        cat = (
            np.concatenate(runs) if runs else np.empty(0, np.int64)
        )
        ref = np.argsort(cat, kind="stable")
        np.testing.assert_array_equal(merged, cat[ref])
        np.testing.assert_array_equal(gather, ref)

    @pytest.mark.parametrize("which", EDGE_CASES)
    def test_mmapped_runs_byte_identical(self, which, tmp_path):
        runs = _edge_case_runs(which)
        merged_mem, gather_mem = merge_sorted_runs(runs)
        reader, mapped = _spill_key_runs(
            runs, str(tmp_path / "keys.run")
        )
        try:
            for orig, view in zip(runs, mapped):
                assert view.dtype == orig.dtype
            merged_map, gather_map = merge_sorted_runs(mapped)
        finally:
            reader.close()
        assert merged_map.tobytes() == merged_mem.tobytes()
        assert gather_map.tobytes() == gather_mem.tobytes()


class TestStreamMergeEdgeCasesMmap:
    """stream_merge_fused over run files == in-core merge_fused_runs."""

    @staticmethod
    def _fused_runs(which):
        key_runs = _edge_case_runs(which)
        span = 101
        out = []
        for keys in key_runs:
            fgrp, fy = keys // span, keys % span
            out.append(make_run(fgrp, fy))
        return out, span

    @pytest.mark.parametrize("which", EDGE_CASES)
    @pytest.mark.parametrize("block_rows", [1024, 1 << 18])
    def test_byte_identical_to_in_core(self, which, block_rows,
                                       tmp_path):
        from repro.ooc import (
            RunFileReader,
            RunFileWriter,
            stream_merge_fused,
        )

        runs, span = self._fused_runs(which)
        ref_fgrp, ref_fy, ref_vals, _, _ = merge_fused_runs(
            runs, (span,)
        )

        path = str(tmp_path / "fused.run")
        writer = RunFileWriter(path)
        for r in runs:
            writer.append_run(
                {"fgrp": r.out_fgrp, "fy": r.out_fy,
                 "vals": r.out_vals}
            )
        writer.close()
        reader = RunFileReader(path)
        try:
            mapped = [
                reader.run(i) for i in range(reader.num_runs)
            ]
            blocks = list(
                stream_merge_fused(
                    mapped, span, block_rows=block_rows
                )
            )
        finally:
            reader.close()
        got_fgrp = (
            np.concatenate([b[0] for b in blocks])
            if blocks else np.empty(0, np.int64)
        )
        got_fy = (
            np.concatenate([b[1] for b in blocks])
            if blocks else np.empty(0, np.int64)
        )
        got_vals = (
            np.concatenate([b[2] for b in blocks])
            if blocks else np.empty(0, np.float64)
        )
        assert got_fgrp.tobytes() == ref_fgrp.tobytes()
        assert got_fy.tobytes() == ref_fy.tobytes()
        assert got_vals.tobytes() == ref_vals.tobytes()
