"""Merge-based output sorting must equal a stable sort, byte for byte."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.parallel.merge import merge_fused_runs, merge_sorted_runs


@dataclass
class FakeRun:
    """Stand-in for FusedRange: just the three output arrays."""

    out_fgrp: np.ndarray
    out_fy: np.ndarray
    out_vals: np.ndarray


def make_run(fgrp, fy):
    fgrp = np.asarray(fgrp, dtype=np.int64)
    fy = np.asarray(fy, dtype=np.int64)
    vals = (fgrp * 1000 + fy).astype(np.float64)
    return FakeRun(fgrp, fy, vals)


class TestMergeSortedRuns:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equals_stable_sort_of_concatenation(self, k, seed):
        rng = np.random.default_rng(seed * 10 + k)
        runs = [
            np.sort(rng.integers(0, 200, size=int(rng.integers(0, 60))))
            .astype(np.int64)
            for _ in range(k)
        ]
        merged, gather = merge_sorted_runs(runs)
        cat = np.concatenate(runs) if runs else np.empty(0, np.int64)
        ref_perm = np.argsort(cat, kind="stable")
        np.testing.assert_array_equal(merged, cat[ref_perm])
        np.testing.assert_array_equal(gather, ref_perm)

    def test_empty(self):
        merged, gather = merge_sorted_runs([])
        assert merged.size == 0 and gather.size == 0

    def test_stability_ties_keep_run_order(self):
        a = np.array([5, 5], dtype=np.int64)
        b = np.array([5], dtype=np.int64)
        _, gather = merge_sorted_runs([a, b])
        np.testing.assert_array_equal(gather, [0, 1, 2])


def reference_sorted(runs):
    fgrp = np.concatenate([r.out_fgrp for r in runs])
    fy = np.concatenate([r.out_fy for r in runs])
    vals = np.concatenate([r.out_vals for r in runs])
    perm = np.lexsort((fy, fgrp))
    return fgrp[perm], fy[perm], vals[perm]


class TestMergeFusedRuns:
    def test_disjoint_ranges_take_concat_path(self):
        runs = [
            make_run([0, 0, 1], [2, 5, 0]),
            make_run([2, 3], [1, 1]),
            make_run([5, 5], [0, 9]),
        ]
        fgrp, fy, vals, presorted, path = merge_fused_runs(runs, (10,))
        assert path == "concat" and presorted
        rg, ry, rv = reference_sorted(runs)
        np.testing.assert_array_equal(fgrp, rg)
        np.testing.assert_array_equal(fy, ry)
        np.testing.assert_array_equal(vals, rv)

    def test_overlapping_runs_take_kway_path(self):
        runs = [
            make_run([0, 2, 4], [1, 1, 1]),
            make_run([1, 3, 5], [0, 0, 0]),
            make_run([0, 5], [9, 9]),
        ]
        fgrp, fy, vals, presorted, path = merge_fused_runs(runs, (10,))
        assert path == "kway" and presorted
        rg, ry, rv = reference_sorted(runs)
        np.testing.assert_array_equal(fgrp, rg)
        np.testing.assert_array_equal(fy, ry)
        np.testing.assert_array_equal(vals, rv)

    def test_unsorted_run_falls_back_to_lexsort(self):
        runs = [make_run([3, 1], [0, 0])]
        fgrp, fy, vals, presorted, path = merge_fused_runs(runs, (10,))
        assert path == "lexsort" and not presorted
        np.testing.assert_array_equal(fgrp, [3, 1])

    def test_key_overflow_falls_back_to_lexsort(self):
        runs = [make_run([2**40], [0])]
        _, _, _, presorted, path = merge_fused_runs(runs, (2**40,))
        assert path == "lexsort" and not presorted

    def test_empty_runs(self):
        fgrp, fy, vals, presorted, path = merge_fused_runs([], (10,))
        assert path == "empty" and presorted
        assert fgrp.size == fy.size == vals.size == 0
        runs = [make_run([], [])]
        _, _, _, presorted, path = merge_fused_runs(runs, (10,))
        assert path == "empty" and presorted

    @pytest.mark.parametrize("seed", range(5))
    def test_random_overlapping_runs_match_lexsort(self, seed):
        rng = np.random.default_rng(seed)
        runs = []
        for _ in range(int(rng.integers(2, 6))):
            n = int(rng.integers(1, 50))
            fgrp = np.sort(rng.integers(0, 30, size=n)).astype(np.int64)
            # fy sorted within each fgrp segment, unique per (fgrp, fy)
            fy = np.zeros(n, dtype=np.int64)
            for g in np.unique(fgrp):
                m = fgrp == g
                fy[m] = np.sort(
                    rng.choice(100, size=int(m.sum()), replace=False)
                )
            runs.append(make_run(fgrp, fy))
        fgrp, fy, vals, presorted, path = merge_fused_runs(runs, (100,))
        assert presorted and path in ("concat", "kway")
        rg, ry, rv = reference_sorted(runs)
        np.testing.assert_array_equal(fgrp, rg)
        np.testing.assert_array_equal(fy, ry)
        np.testing.assert_array_equal(vals, rv)
