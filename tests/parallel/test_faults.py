"""Fault-tolerant parallel execution under deterministic fault injection.

Every test here disturbs a `parallel_sparta` run with a
:class:`repro.faults.FaultPlan` — killing, hanging, or corrupting a
worker at a chosen pipeline stage — and asserts the recovery machinery
in :mod:`repro.parallel.procpool` restores the undisturbed contract:
output bit-identical to the serial fused engine, byte-exact Table-2
traffic cells, exact probe/product counters, and no leaked
shared-memory segment. The suite is marked ``faults`` and runs in the
CI chaos job, not in the default tier-1 selection.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import defaultdict

import numpy as np
import pytest

from repro.core import contract
from repro.errors import (
    ContractionError,
    ParallelError,
    PoolDegradedError,
)
from repro.faults import (
    ANY,
    FAULT_STAGES,
    FaultPlan,
    FaultSpec,
    payload_digest,
)
from repro.parallel import parallel_sparta
from repro.tensor import random_tensor_fibered

pytestmark = pytest.mark.faults

MODES = ((2, 3), (0, 1))


def traffic_by_cell(profile):
    """Total bytes per (object, stage, kind, pattern) Table-2 cell."""
    cells = defaultdict(int)
    for rec in profile.traffic:
        cells[(rec.obj, rec.stage, rec.kind, rec.pattern)] += rec.nbytes
    return dict(cells)


def kill_at(stage, worker=0, unit=ANY):
    return FaultPlan(
        specs=(FaultSpec("kill", worker=worker, stage=stage, unit=unit),)
    )


@pytest.fixture(scope="module")
def pair():
    x = random_tensor_fibered((12, 14, 16, 18), 1200, 2, 48, seed=91)
    y = random_tensor_fibered((16, 18, 10, 12), 2000, 2, 200, seed=92)
    return x, y


@pytest.fixture(scope="module")
def serial(pair):
    x, y = pair
    res = contract(
        x, y, *MODES, method="sparta", swap_larger_to_y=False
    )
    return res


def assert_matches_serial(par, serial, label):
    """Faulty run == serial: output bytes, traffic cells, counters."""
    ref = serial.tensor.sort()
    z = par.result.tensor.sort()
    np.testing.assert_array_equal(
        z.indices, ref.indices, err_msg=f"{label}: index mismatch"
    )
    np.testing.assert_array_equal(
        z.values, ref.values, err_msg=f"{label}: value bytes differ"
    )
    cells = traffic_by_cell(par.result.profile)
    serial_cells = traffic_by_cell(serial.profile)
    assert cells.keys() == serial_cells.keys(), label
    for cell, nbytes in serial_cells.items():
        assert cells[cell] == nbytes, (
            f"{label}: traffic drifts on {cell}: "
            f"{cells[cell]} != serial {nbytes}"
        )
    for counter in ("hash_probes", "search_probes", "products"):
        assert (
            par.result.profile.counters.get(counter)
            == serial.profile.counters.get(counter)
        ), f"{label}: counter {counter}"


def wait_no_children(timeout=10.0):
    """All worker processes reaped within *timeout* seconds."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not mp.active_children():
            return True
        time.sleep(0.05)
    return not mp.active_children()


class TestKillRecovery:
    """Killing one worker at any stage leaves no trace in the result."""

    @pytest.mark.parametrize("stage", FAULT_STAGES)
    def test_process_backend_survives_kill(
        self, pair, serial, stage, shm_leak_check
    ):
        x, y = pair
        par = parallel_sparta(
            x, y, *MODES,
            threads=2, backend="process",
            fault_plan=kill_at(stage),
        )
        assert_matches_serial(par, serial, f"kill@{stage}")
        assert (
            par.result.profile.counters.get("ft_worker_failures", 0) >= 1
        ), f"kill@{stage} never fired"
        assert "degraded" not in par.result.profile.flags
        assert wait_no_children()

    @pytest.mark.parametrize("stage", FAULT_STAGES)
    def test_process_backend_survives_kill_without_pool(
        self, pair, serial, stage, shm_leak_check
    ):
        # parallel_stage1=False takes the single-phase
        # contract_chunks_in_processes path; stage-1 faults cannot fire
        # there (stage 1 runs in the parent) but must not break it.
        x, y = pair
        par = parallel_sparta(
            x, y, *MODES,
            threads=2, backend="process", parallel_stage1=False,
            fault_plan=kill_at(stage),
        )
        assert_matches_serial(par, serial, f"kill@{stage}/no-pool")
        if stage != "input_processing":
            assert (
                par.result.profile.counters.get("ft_worker_failures", 0)
                >= 1
            )
        assert wait_no_children()

    @pytest.mark.parametrize("stage", FAULT_STAGES)
    def test_thread_backend_survives_kill(self, pair, serial, stage):
        # On threads a "kill" surfaces as InjectedFault and is retried
        # in-process; only the accepted attempt's probes may count.
        x, y = pair
        par = parallel_sparta(
            x, y, *MODES,
            threads=3, backend="thread",
            fault_plan=kill_at(stage),
        )
        assert_matches_serial(par, serial, f"thread-kill@{stage}")
        assert (
            par.result.profile.counters.get("ft_worker_failures", 0) >= 1
        )

    def test_kill_pinned_to_specific_chunk(
        self, pair, serial, shm_leak_check
    ):
        x, y = pair
        par = parallel_sparta(
            x, y, *MODES,
            threads=2, backend="process",
            fault_plan=kill_at("index_search", worker=1, unit=2),
        )
        assert_matches_serial(par, serial, "kill@chunk2")


class TestHangsAndTimeouts:
    def test_hung_worker_is_killed_and_chunk_reassigned(
        self, pair, serial, shm_leak_check
    ):
        x, y = pair
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "delay", worker=0, stage="index_search", seconds=30.0
                ),
            )
        )
        t0 = time.monotonic()
        par = parallel_sparta(
            x, y, *MODES,
            threads=2, backend="process",
            fault_plan=plan, unit_timeout=1.0,
        )
        elapsed = time.monotonic() - t0
        assert_matches_serial(par, serial, "hang->reassign")
        counters = par.result.profile.counters
        assert counters.get("ft_hung_workers", 0) >= 1
        assert counters.get("ft_reassigned_units", 0) >= 1
        assert elapsed < 25.0, "hang detector never fired"
        assert wait_no_children()

    def test_phase_timeout_names_pending_chunks(
        self, pair, shm_leak_check
    ):
        # The whole-phase deadline is not recoverable: it must raise,
        # name the still-pending chunk ids, and reap every worker.
        x, y = pair
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "delay", worker=0, stage="index_search", seconds=30.0
                ),
            )
        )
        with pytest.raises(ParallelError, match=r"timed out") as exc:
            parallel_sparta(
                x, y, *MODES,
                threads=2, backend="process",
                fault_plan=plan, timeout=2.0,
            )
        message = str(exc.value)
        assert "chunks [" in message, message
        assert any(ch.isdigit() for ch in message.split("chunks [")[1])
        assert wait_no_children()

    def test_thread_delay_is_benign(self, pair, serial):
        # Threads cannot be preempted mid-unit; a delay just slows the
        # run and must not perturb anything.
        x, y = pair
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "delay", worker=0, stage="accumulation", seconds=0.05
                ),
            )
        )
        par = parallel_sparta(
            x, y, *MODES, threads=3, backend="thread", fault_plan=plan
        )
        assert_matches_serial(par, serial, "thread-delay")


class TestRetryExhaustion:
    def irrecoverable_plan(self):
        # worker=ANY matches every worker including respawned ones, so
        # chunk 0 can never complete in a worker process.
        return FaultPlan(
            specs=(
                FaultSpec(
                    "kill", worker=ANY, stage="index_search", unit=0
                ),
            )
        )

    def test_raises_pool_degraded_after_retries(
        self, pair, shm_leak_check
    ):
        x, y = pair
        with pytest.raises(PoolDegradedError, match=r"retry") as exc:
            parallel_sparta(
                x, y, *MODES,
                threads=2, backend="process",
                fault_plan=self.irrecoverable_plan(), max_retries=1,
            )
        assert "died" in str(exc.value)
        assert wait_no_children()

    def test_degrades_to_serial_when_requested(
        self, pair, serial, shm_leak_check
    ):
        x, y = pair
        par = parallel_sparta(
            x, y, *MODES,
            threads=2, backend="process",
            fault_plan=self.irrecoverable_plan(),
            max_retries=1, on_failure="serial",
        )
        assert_matches_serial(par, serial, "degraded-serial")
        profile = par.result.profile
        assert profile.flags.get("degraded") == "serial"
        assert profile.counters.get("ft_degraded_serial", 0) >= 1
        assert profile.counters.get("ft_recovery_rounds", 0) >= 1
        # The serial fallback reports as worker -1 in the stats.
        assert any(s.worker == -1 for s in par.thread_stats)
        assert wait_no_children()

    def test_thread_backend_degrades_to_serial(self, pair, serial):
        x, y = pair
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "kill", worker=ANY, stage="index_search", unit=ANY
                ),
            )
        )
        par = parallel_sparta(
            x, y, *MODES,
            threads=3, backend="thread",
            fault_plan=plan, max_retries=1, on_failure="serial",
        )
        assert_matches_serial(par, serial, "thread-degraded")
        assert par.result.profile.flags.get("degraded") == "serial"

    def test_thread_backend_raises_after_retries(self, pair):
        x, y = pair
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "kill", worker=ANY, stage="index_search", unit=ANY
                ),
            )
        )
        with pytest.raises(PoolDegradedError):
            parallel_sparta(
                x, y, *MODES,
                threads=3, backend="thread",
                fault_plan=plan, max_retries=1,
            )


class TestCorruption:
    @pytest.mark.parametrize("backend,threads", [("process", 2), ("thread", 3)])
    def test_corrupt_chunk_payload_detected(
        self, pair, serial, backend, threads, shm_leak_check
    ):
        x, y = pair
        plan = FaultPlan(
            specs=(
                FaultSpec("corrupt", worker=0, stage="accumulation"),
            )
        )
        par = parallel_sparta(
            x, y, *MODES,
            threads=threads, backend=backend, fault_plan=plan,
        )
        assert_matches_serial(par, serial, f"corrupt@{backend}")
        assert (
            par.result.profile.counters.get("ft_corrupt_payloads", 0)
            >= 1
        ), "corruption was never detected"

    def test_corrupt_partial_payload_detected(
        self, pair, serial, shm_leak_check
    ):
        x, y = pair
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "corrupt", worker=0, stage="input_processing"
                ),
            )
        )
        par = parallel_sparta(
            x, y, *MODES,
            threads=2, backend="process", fault_plan=plan,
        )
        assert_matches_serial(par, serial, "corrupt-partial")
        assert (
            par.result.profile.counters.get("ft_corrupt_payloads", 0)
            >= 1
        )

    def test_payload_digest_is_order_and_shape_sensitive(self):
        a = np.arange(6, dtype=np.int64)
        b = np.arange(6, dtype=np.float64)
        assert payload_digest(a) != payload_digest(b)
        assert payload_digest(a, b) != payload_digest(b, a)
        assert payload_digest(a.reshape(2, 3)) != payload_digest(a)
        c = a.copy()
        c[0] += 1
        assert payload_digest(c) != payload_digest(a)


class TestActivationPaths:
    def test_env_var_activates_plan(
        self, pair, serial, monkeypatch, shm_leak_check
    ):
        x, y = pair
        monkeypatch.setenv(
            "REPRO_FAULTS", kill_at("accumulation").to_json()
        )
        par = parallel_sparta(x, y, *MODES, threads=2, backend="process")
        assert_matches_serial(par, serial, "env-activated")
        assert (
            par.result.profile.counters.get("ft_worker_failures", 0) >= 1
        )

    def test_explicit_plan_overrides_env(self, pair, monkeypatch):
        x, y = pair
        monkeypatch.setenv(
            "REPRO_FAULTS",
            FaultPlan(
                specs=(
                    FaultSpec(
                        "kill", worker=ANY, stage="index_search"
                    ),
                )
            ).to_json(),
        )
        # The explicit empty plan wins: no faults, no failures.
        par = parallel_sparta(
            x, y, *MODES,
            threads=2, backend="process", fault_plan=FaultPlan(),
        )
        assert (
            par.result.profile.counters.get("ft_worker_failures", 0) == 0
        )

    def test_malformed_env_plan_raises(self, pair, monkeypatch):
        x, y = pair
        monkeypatch.setenv("REPRO_FAULTS", "{not json")
        with pytest.raises(ContractionError, match="REPRO_FAULTS"):
            parallel_sparta(x, y, *MODES, threads=2)

    def test_contract_passes_fault_plan_through(
        self, pair, serial, shm_leak_check
    ):
        x, y = pair
        res = contract(
            x, y, *MODES,
            method="parallel", threads=2, backend="process",
            fault_plan=kill_at("index_search"),
        )
        ref = serial.tensor.sort()
        z = res.tensor.sort()
        np.testing.assert_array_equal(z.indices, ref.indices)
        np.testing.assert_array_equal(z.values, ref.values)
        assert res.profile.counters.get("ft_worker_failures", 0) >= 1

    def test_seeded_plans_are_deterministic(self):
        for seed in range(20):
            assert FaultPlan.from_seed(seed) == FaultPlan.from_seed(seed)
        kinds = {
            FaultPlan.from_seed(s).specs[0].kind for s in range(40)
        }
        assert kinds == {"kill", "delay", "corrupt"}


class TestShmLifecycle:
    def test_undisturbed_run_leaks_nothing(self, pair, shm_leak_check):
        x, y = pair
        parallel_sparta(x, y, *MODES, threads=2, backend="process")

    def test_degraded_run_leaks_nothing(self, pair, shm_leak_check):
        x, y = pair
        with pytest.raises(PoolDegradedError):
            parallel_sparta(
                x, y, *MODES,
                threads=2, backend="process", max_retries=0,
                fault_plan=FaultPlan(
                    specs=(
                        FaultSpec(
                            "kill",
                            worker=ANY,
                            stage="index_search",
                            unit=0,
                        ),
                    )
                ),
            )
        assert wait_no_children()
