"""Parallel-suite fixtures."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _planner_off(monkeypatch):
    """Keep the executor's serial-routing guard out of the way.

    These tests exercise the worker machinery (pools, chunking, merge,
    fault recovery) on deliberately tiny tensors — exactly the inputs
    the cost-model planner routes to the fused serial path. Pin the
    environment default to "off" so every ``parallel_sparta`` call here
    actually spins up workers; planner behaviour itself is covered by
    ``tests/planner`` and the executor-routing tests, which opt back in
    explicitly.
    """
    monkeypatch.setenv("REPRO_PLANNER", "off")
