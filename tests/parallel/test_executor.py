"""Tests for the thread-parallel Sparta executor."""

import pytest

from repro.core import contract
from repro.errors import ShapeError
from repro.parallel import parallel_sparta
from repro.tensor import random_tensor, random_tensor_fibered


@pytest.fixture
def pair():
    x = random_tensor_fibered((16, 16, 20, 20), 1500, 2, 64, seed=71)
    y = random_tensor_fibered((20, 20, 14, 14), 2500, 2, 300, seed=72)
    return x, y


class TestCorrectness:
    @pytest.mark.parametrize("threads", [1, 2, 3, 8])
    def test_matches_serial(self, pair, threads):
        x, y = pair
        serial = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )
        par = parallel_sparta(x, y, (2, 3), (0, 1), threads=threads)
        assert par.result.tensor.allclose(serial.tensor)

    def test_matches_dense(self):
        x = random_tensor((6, 5, 4, 3), 40, seed=73)
        y = random_tensor((4, 3, 7, 8), 50, seed=74)
        ref = contract(x, y, (2, 3), (0, 1), method="dense")
        par = parallel_sparta(x, y, (2, 3), (0, 1), threads=4)
        assert par.result.tensor.allclose(ref.tensor)

    def test_empty_input(self):
        from repro.tensor import SparseTensor

        x = SparseTensor.empty((3, 4))
        y = SparseTensor.empty((4, 5))
        par = parallel_sparta(x, y, (1,), (0,), threads=4)
        assert par.result.nnz == 0

    def test_unsorted_output_option(self, pair):
        x, y = pair
        par = parallel_sparta(
            x, y, (2, 3), (0, 1), threads=2, sort_output=False
        )
        sorted_par = parallel_sparta(x, y, (2, 3), (0, 1), threads=2)
        assert par.result.tensor.allclose(sorted_par.result.tensor)

    def test_bad_thread_count(self, pair):
        x, y = pair
        with pytest.raises(ShapeError):
            parallel_sparta(x, y, (2, 3), (0, 1), threads=0)


class TestAccounting:
    def test_same_data_objects_as_serial(self, pair):
        """The parallel profile models the same Table-2 object set."""
        x, y = pair
        serial = contract(
            x, y, (2, 3), (0, 1), method="sparta", swap_larger_to_y=False
        )
        par = parallel_sparta(x, y, (2, 3), (0, 1), threads=4)
        assert set(par.result.profile.object_bytes) == set(
            serial.profile.object_bytes
        )
        assert {rec.obj for rec in par.result.profile.traffic} == {
            rec.obj for rec in serial.profile.traffic
        }

    def test_thread_stats_cover_work(self, pair):
        x, y = pair
        par = parallel_sparta(x, y, (2, 3), (0, 1), threads=4)
        assert sum(s.nnz_x for s in par.thread_stats) == x.nnz
        assert (
            sum(s.output_nnz for s in par.thread_stats)
            == par.result.nnz
        )
        assert sum(s.products for s in par.thread_stats) == (
            par.result.profile.counters["products"]
        )

    def test_load_reasonably_balanced(self, pair):
        x, y = pair
        par = parallel_sparta(x, y, (2, 3), (0, 1), threads=4)
        assert par.load_imbalance < 1.8

    def test_worker_ids_unique(self, pair):
        x, y = pair
        par = parallel_sparta(x, y, (2, 3), (0, 1), threads=4)
        ids = [s.worker for s in par.thread_stats]
        assert len(set(ids)) == len(ids)
