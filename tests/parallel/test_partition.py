"""Tests for sub-tensor partitioning."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.parallel import (
    partition_by_count,
    partition_imbalance,
    partition_subtensors,
)


def _ptr(sizes):
    return np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)


class TestPartition:
    def test_covers_everything_once(self):
        ptr = _ptr([3, 1, 4, 1, 5, 9, 2, 6])
        ranges = partition_subtensors(ptr, 3)
        covered = []
        for lo, hi in ranges:
            covered.extend(range(lo, hi))
        assert covered == list(range(8))

    def test_single_worker(self):
        ptr = _ptr([2, 2, 2])
        assert partition_subtensors(ptr, 1) == [(0, 3)]

    def test_more_workers_than_subtensors(self):
        ptr = _ptr([5, 5])
        ranges = partition_subtensors(ptr, 8)
        assert len(ranges) == 2

    def test_balanced_uniform(self):
        ptr = _ptr([10] * 12)
        ranges = partition_subtensors(ptr, 4)
        assert partition_imbalance(ptr, ranges) == pytest.approx(1.0)

    def test_balances_by_nnz_not_count(self):
        # One huge sub-tensor followed by many small ones.
        ptr = _ptr([100] + [1] * 100)
        ranges = partition_subtensors(ptr, 2)
        loads = [int(ptr[hi] - ptr[lo]) for lo, hi in ranges]
        assert max(loads) == 100  # the huge fiber sits alone

    def test_empty(self):
        assert partition_subtensors(_ptr([]), 4) == []

    def test_bad_worker_count(self):
        with pytest.raises(ShapeError):
            partition_subtensors(_ptr([1]), 0)

    def test_ranges_contiguous_and_ordered(self):
        rng = np.random.default_rng(3)
        ptr = _ptr(rng.integers(1, 50, size=64))
        ranges = partition_subtensors(ptr, 7)
        for (a_lo, a_hi), (b_lo, b_hi) in zip(ranges, ranges[1:]):
            assert a_hi == b_lo


class TestEdgeCases:
    def test_all_empty_fibers(self):
        # Sub-tensors exist but carry zero non-zeros: every range must
        # still be covered exactly once and imbalance degrades to 1.0.
        ptr = _ptr([0] * 10)
        ranges = partition_subtensors(ptr, 4)
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(10))
        assert partition_imbalance(ptr, ranges) == 1.0

    def test_one_giant_fiber_among_empties(self):
        ptr = _ptr([0, 0, 1000, 0, 0])
        ranges = partition_subtensors(ptr, 3)
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(5))
        loads = [int(ptr[hi] - ptr[lo]) for lo, hi in ranges]
        assert max(loads) == 1000  # indivisible — one range owns it all

    def test_more_workers_than_subtensors_covers_all(self):
        ptr = _ptr([7, 3, 9])
        ranges = partition_subtensors(ptr, 16)
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == [0, 1, 2]
        assert len(ranges) <= 3  # never more ranges than sub-tensors

    def test_zero_product_workers_imbalance_is_one(self):
        # ParallelResult.load_imbalance must not divide by zero when
        # every worker reports zero products.
        from repro.core import contract
        from repro.parallel import ParallelResult, ThreadStats

        res = contract(
            *_empty_pair(), (1,), (0,), method="sparta",
            swap_larger_to_y=False,
        )
        par = ParallelResult(
            result=res,
            threads=3,
            thread_stats=[
                ThreadStats(
                    worker=w, subtensors=0, nnz_x=0, products=0,
                    output_nnz=0, seconds=0.0,
                )
                for w in range(3)
            ],
        )
        assert par.load_imbalance == 1.0

    def test_no_stats_imbalance_is_one(self):
        from repro.parallel import ParallelResult

        par = ParallelResult(result=None, threads=1, thread_stats=[])
        assert par.load_imbalance == 1.0


def _empty_pair():
    from repro.tensor import SparseTensor

    return SparseTensor.empty((3, 4)), SparseTensor.empty((4, 5))


class TestWeights:
    def test_none_weights_identical_to_nnz(self):
        rng = np.random.default_rng(5)
        sizes = rng.integers(1, 40, size=50)
        ptr = _ptr(sizes)
        assert partition_subtensors(ptr, 6) == partition_subtensors(
            ptr, 6, weights=sizes
        )

    def test_custom_weights_override_nnz(self):
        # nnz says uniform, weights say the first sub-tensor dominates:
        # the weighted cut isolates it.
        ptr = _ptr([10] * 8)
        weights = np.array([100] + [1] * 7, dtype=np.int64)
        ranges = partition_subtensors(ptr, 2, weights=weights)
        assert ranges[0] == (0, 1)

    def test_bad_weights_shape(self):
        with pytest.raises(ShapeError):
            partition_subtensors(_ptr([1, 2, 3]), 2, weights=np.array([1]))


class TestPartitionByCount:
    def test_equal_counts(self):
        ranges = partition_by_count(10, 3)
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(10))
        counts = [hi - lo for lo, hi in ranges]
        assert max(counts) - min(counts) <= 1

    def test_more_chunks_than_subtensors(self):
        ranges = partition_by_count(3, 8)
        assert len(ranges) == 3

    def test_empty_and_invalid(self):
        assert partition_by_count(0, 4) == []
        with pytest.raises(ShapeError):
            partition_by_count(5, 0)

    def test_ignores_skew_where_nnz_partition_balances(self):
        # The satellite claim: size-aware chunking beats the equal-count
        # baseline on skewed fiber-size distributions.
        ptr = _ptr([1000] + [1] * 99)
        by_count = partition_by_count(100, 4)
        by_nnz = partition_subtensors(ptr, 4)
        assert partition_imbalance(ptr, by_nnz) < partition_imbalance(
            ptr, by_count
        )


class TestChunkingExecutor:
    def test_nnz_chunking_beats_count_on_skewed_input(self):
        # End-to-end: a tensor whose first fiber holds most of X's
        # non-zeros must balance better under chunking="nnz" than under
        # the naive chunking="count", per the load_imbalance diagnostic.
        from repro.parallel import parallel_sparta
        from repro.tensor import SparseTensor

        rng = np.random.default_rng(17)
        hot = np.column_stack(
            (
                np.zeros(600, dtype=np.int64),
                rng.integers(0, 40, size=600),
            )
        )
        cold_rows = np.repeat(np.arange(1, 31, dtype=np.int64), 2)
        cold = np.column_stack(
            (cold_rows, rng.integers(0, 40, size=cold_rows.size))
        )
        idx = np.vstack((hot, cold))
        x = SparseTensor(
            idx, rng.random(idx.shape[0]), (31, 40)
        ).coalesce()
        y_idx = np.column_stack(
            (
                rng.integers(0, 40, size=800),
                rng.integers(0, 25, size=800),
            )
        ).astype(np.int64)
        y = SparseTensor(y_idx, rng.random(800), (40, 25)).coalesce()
        runs = {
            chunking: parallel_sparta(
                x, y, (1,), (0,),
                threads=4, chunking=chunking, chunks_per_worker=1,
            )
            for chunking in ("nnz", "count")
        }
        zs = runs["nnz"].result.tensor
        zc = runs["count"].result.tensor
        np.testing.assert_array_equal(zs.indices, zc.indices)
        np.testing.assert_array_equal(zs.values, zc.values)
        assert (
            runs["nnz"].load_imbalance < runs["count"].load_imbalance
        )


class TestImbalance:
    def test_perfect(self):
        ptr = _ptr([4, 4])
        assert partition_imbalance(ptr, [(0, 1), (1, 2)]) == 1.0

    def test_skewed(self):
        ptr = _ptr([9, 1])
        assert partition_imbalance(ptr, [(0, 1), (1, 2)]) == pytest.approx(
            1.8
        )

    def test_empty_ranges(self):
        assert partition_imbalance(_ptr([1]), []) == 1.0
