"""Tests for the analytic scalability model."""

import pytest

from repro.core.profile import RunProfile
from repro.core.stages import STAGE_ORDER, Stage
from repro.errors import ShapeError
from repro.parallel import CALIBRATED_SERIAL_FRACTIONS, ScalabilityModel


@pytest.fixture
def profile():
    p = RunProfile("test")
    # The §5.2 Sparta stage shares.
    p.add_time(Stage.INPUT_PROCESSING, 3.3)
    p.add_time(Stage.INDEX_SEARCH, 4.7)
    p.add_time(Stage.ACCUMULATION, 61.6)
    p.add_time(Stage.WRITEBACK, 9.6)
    p.add_time(Stage.OUTPUT_SORTING, 20.8)
    return p


class TestCalibration:
    def test_paper_stage_speedups_at_12(self):
        model = ScalabilityModel()
        expected = {
            Stage.INPUT_PROCESSING: 6.8,
            Stage.INDEX_SEARCH: 10.4,
            Stage.ACCUMULATION: 10.9,
            Stage.WRITEBACK: 9.5,
            Stage.OUTPUT_SORTING: 6.2,
        }
        for stage, want in expected.items():
            assert model.stage_speedup(stage, 12) == pytest.approx(
                want, rel=1e-6
            )

    def test_serial_fractions_positive(self):
        for frac in CALIBRATED_SERIAL_FRACTIONS.values():
            assert 0 < frac < 0.1

    def test_hty_build_speedup(self):
        assert ScalabilityModel.hty_build_speedup(12) == pytest.approx(
            7.8, rel=1e-6
        )
        assert ScalabilityModel.hty_build_speedup(1) == 1.0


class TestPrediction:
    def test_one_thread_identity(self, profile):
        pred = ScalabilityModel().predict(profile, 1)
        assert pred.speedup == pytest.approx(1.0)

    def test_monotonic_in_threads(self, profile):
        model = ScalabilityModel()
        speedups = [model.predict(profile, t).speedup for t in range(1, 17)]
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))

    def test_bounded_by_threads(self, profile):
        model = ScalabilityModel()
        for t in (2, 4, 8, 12):
            assert model.predict(profile, t).speedup <= t

    def test_paper_overall_band_at_12(self, profile):
        # With Sparta's own stage mix, the end-to-end speedup at 12
        # threads lands in the paper's 9.3x-10.7x neighbourhood.
        pred = ScalabilityModel().predict(profile, 12)
        assert 8.0 < pred.speedup < 11.0

    def test_load_imbalance_hurts_computation(self, profile):
        balanced = ScalabilityModel().predict(profile, 12).speedup
        skewed = ScalabilityModel(load_imbalance=1.5).predict(
            profile, 12
        ).speedup
        assert skewed < balanced

    def test_all_stages_reported(self, profile):
        pred = ScalabilityModel().predict(profile, 4)
        assert set(pred.stage_speedups) == set(STAGE_ORDER)

    def test_empty_profile_rejected(self):
        with pytest.raises(ShapeError):
            ScalabilityModel().predict(RunProfile("empty"), 4)

    def test_bad_threads_rejected(self, profile):
        with pytest.raises(ShapeError):
            ScalabilityModel().stage_speedup(Stage.ACCUMULATION, 0)

    def test_bad_imbalance_rejected(self):
        with pytest.raises(ShapeError):
            ScalabilityModel(load_imbalance=0.5)

    def test_io_stages_scale_worse(self, profile):
        # The paper: input/output processing scales worse than compute.
        model = ScalabilityModel()
        assert model.stage_speedup(
            Stage.INPUT_PROCESSING, 12
        ) < model.stage_speedup(Stage.ACCUMULATION, 12)
        assert model.stage_speedup(
            Stage.OUTPUT_SORTING, 12
        ) < model.stage_speedup(Stage.INDEX_SEARCH, 12)
