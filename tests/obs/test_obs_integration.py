"""End-to-end tracing through the real engines.

Covers the tentpole's acceptance behaviors: the serial engine emits all
five stage spans nested under the contraction root; the parallel
backends ship per-worker chunk spans back to the parent timeline; the
recovery machinery surfaces worker failures and respawn rounds as
instant events; and a run with tracing *disabled* is observably
identical to an untraced run.
"""

from __future__ import annotations

import pytest

from repro.core import contract
from repro.core.stages import STAGE_ORDER
from repro.obs import Tracer
from repro.parallel import parallel_sparta
from repro.tensor import random_tensor, random_tensor_fibered

MODES = ((2, 3), (0, 1))


@pytest.fixture(scope="module")
def pair():
    x = random_tensor_fibered((12, 14, 16, 18), 1200, 2, 48, seed=91)
    y = random_tensor_fibered((16, 18, 10, 12), 2000, 2, 200, seed=92)
    return x, y


STAGE_NAMES = [s.value for s in STAGE_ORDER]


class TestSerialEngines:
    @pytest.mark.parametrize("engine", ["sparta", "spa", "coo_hta"])
    def test_five_stage_spans_under_root(self, pair, engine):
        x, y = pair
        tracer = Tracer()
        contract(
            x, y, *MODES, method=engine, tracer=tracer,
            **({"swap_larger_to_y": False} if engine == "sparta" else {}),
        )
        spans = tracer.spans()
        names = [r.name for r in spans]
        for stage in STAGE_NAMES:
            assert stage in names, f"{engine} missing {stage} span"
        root = spans[0]
        assert root.cat == "contraction"
        stage_spans = [r for r in spans if r.name in STAGE_NAMES]
        for rec in stage_spans:
            assert rec.ts >= root.ts - 1e-9
            assert rec.end <= root.end + 1e-9
        # stage spans tile the root in pipeline order without overlap
        ordered = sorted(stage_spans, key=lambda r: r.ts)
        assert [r.name for r in ordered] == STAGE_NAMES
        for a, b in zip(ordered, ordered[1:]):
            assert a.end <= b.ts + 1e-9

    def test_untraced_engine_lists_fall_back_to_root_span(self, pair):
        # engines outside _TRACED_ENGINES still get a root span from
        # the dispatcher, so every `contract` call is visible
        x = random_tensor((6, 5, 4), 30, seed=11)
        y = random_tensor((4, 7), 20, seed=12)
        tracer = Tracer()
        contract(x, y, (2,), (0,), method="dense", tracer=tracer)
        (root,) = tracer.spans()
        assert root.name == "dense"
        assert root.cat == "contraction"


class TestParallelBackends:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_worker_chunk_spans_on_worker_tracks(self, pair, backend):
        x, y = pair
        tracer = Tracer()
        par = parallel_sparta(
            x, y, *MODES, threads=4, backend=backend, tracer=tracer,
            planner="off",
        )
        names = [r.name for r in tracer.spans()]
        for stage in STAGE_NAMES:
            assert stage in names, f"{backend} missing {stage} span"
        chunks = [r for r in tracer.spans() if r.name == "chunk"]
        assert chunks, f"{backend}: no worker chunk spans"
        assert {r.tid for r in chunks} <= set(range(1, 5))
        root = next(
            r for r in tracer.spans() if r.cat == "contraction"
        )
        assert root.args.get("backend") == backend
        assert par.result.tensor.nnz == root.args.get("nnz_out")

    def test_process_backend_covers_every_chunk(self, pair):
        x, y = pair
        tracer = Tracer()
        parallel_sparta(
            x, y, *MODES, threads=4, backend="process", tracer=tracer,
            planner="off",
        )
        chunks = [r for r in tracer.spans() if r.name == "chunk"]
        units = sorted(r.args["unit"] for r in chunks)
        # every chunk unit computed exactly once, 0..n-1 with no gaps
        assert units == list(range(len(units)))
        assert len(units) >= 4
        assert all(r.dur > 0.0 for r in chunks)
        # claims precede their chunk's completion on the same track
        claims = [r for r in tracer.events() if r.name == "claim"]
        assert {r.args["unit"] for r in claims} >= set(units)
        # stage-1 partial builds also land on worker tracks
        partials = [
            r for r in tracer.spans() if r.name == "stage1_partial"
        ]
        assert partials and all(r.tid >= 1 for r in partials)

    def test_merge_span_present_on_merge_sort(self, pair):
        x, y = pair
        tracer = Tracer()
        parallel_sparta(
            x, y, *MODES, threads=2, backend="thread",
            merge_output=True, tracer=tracer, planner="off",
        )
        assert any(
            r.name == "merge_output" and r.cat == "merge"
            for r in tracer.spans()
        )


class TestTracingDisabledDifferential:
    """tracer=None must be observably identical to an untraced run."""

    def test_serial_profile_identical(self, pair):
        x, y = pair
        base = contract(
            x, y, *MODES, method="sparta", swap_larger_to_y=False
        )
        traced = contract(
            x, y, *MODES, method="sparta", swap_larger_to_y=False,
            tracer=Tracer(),
        )
        off = contract(
            x, y, *MODES, method="sparta", swap_larger_to_y=False,
            tracer=None,
        )
        def strip(profile):
            d = profile.to_dict()
            d.pop("stage_seconds")  # timing is never bit-reproducible
            return d

        assert strip(off.profile) == strip(base.profile)
        assert strip(traced.profile) == strip(base.profile)
        assert off.tensor.allclose(base.tensor)
        assert traced.tensor.allclose(base.tensor)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_profile_identical(self, pair, backend):
        x, y = pair
        base = parallel_sparta(
            x, y, *MODES, threads=4, backend=backend, planner="off"
        )
        traced = parallel_sparta(
            x, y, *MODES, threads=4, backend=backend, tracer=Tracer(),
            planner="off",
        )
        def strip(profile):
            d = profile.to_dict()
            d.pop("stage_seconds")
            # work stealing makes chunk ownership (hence the imbalance
            # statistic) nondeterministic between ANY two process runs
            d["counters"].pop("load_imbalance_x1000", None)
            return d

        assert strip(traced.result.profile) == strip(base.result.profile)
        assert traced.result.tensor.allclose(base.result.tensor)


@pytest.mark.faults
class TestRecoveryEvents:
    def test_respawn_events_under_injected_kill(self, pair):
        from repro.faults import ANY, FaultPlan, FaultSpec

        x, y = pair
        tracer = Tracer()
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "kill", worker=0, stage="index_search", unit=ANY
                ),
            )
        )
        par = parallel_sparta(
            x, y, *MODES, threads=3, backend="process",
            fault_plan=plan, tracer=tracer,
        )
        events = {r.name for r in tracer.events()}
        assert "worker_failure" in events
        assert "respawn_round" in events
        failures = [
            r for r in tracer.events() if r.name == "worker_failure"
        ]
        assert all(r.cat == "recovery" for r in failures)
        # the recovered run still computed every chunk
        chunks = [r for r in tracer.spans() if r.name == "chunk"]
        units = sorted({r.args["unit"] for r in chunks})
        assert units == list(range(len(units)))
        assert par.result.profile.counters["ft_worker_failures"] >= 1

    def test_thread_backend_fault_instants(self, pair):
        from repro.faults import FaultPlan, FaultSpec

        x, y = pair
        tracer = Tracer()
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    "delay", worker=0, stage="accumulation",
                    seconds=0.01,
                ),
            )
        )
        parallel_sparta(
            x, y, *MODES, threads=2, backend="thread",
            fault_plan=plan, tracer=tracer,
        )
        delays = [
            r for r in tracer.events() if r.name == "fault_delay"
        ]
        assert delays and delays[0].cat == "fault"
        assert delays[0].args["seconds"] == 0.01
