"""Unit tests for :mod:`repro.obs.tracer` and the trace exports."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    format_span_tree,
    to_chrome_trace,
)
from repro.obs.export import TRACE_PID
from repro.obs.tracer import _NULL_SPAN, TraceRecord


def fake_clock(times):
    """A clock that pops pre-programmed timestamps."""
    it = iter(times)
    return lambda: next(it)


class TestSpans:
    def test_span_records_duration_and_args(self):
        tr = Tracer(clock=fake_clock([0.0, 1.0, 3.5]))
        with tr.span("work", cat="stage", n=7) as sp:
            sp.set(extra="yes")
        (rec,) = tr.records
        assert rec.name == "work"
        assert rec.ts == 1.0
        assert rec.dur == 2.5
        assert rec.args == {"n": 7, "extra": "yes"}

    def test_span_recorded_on_exception(self):
        tr = Tracer(clock=fake_clock([0.0, 1.0, 2.0]))
        with pytest.raises(ValueError):
            with tr.span("doomed"):
                raise ValueError("boom")
        (rec,) = tr.records
        assert rec.name == "doomed"
        assert rec.dur == 1.0

    def test_nested_spans_sorted_outer_first(self):
        tr = Tracer(clock=fake_clock([0.0, 1.0, 2.0, 3.0, 4.0]))
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        # inner closes (and appends) first; spans() restores outer-first
        assert [r.name for r in tr.records] == ["inner", "outer"]
        assert [r.name for r in tr.spans()] == ["outer", "inner"]

    def test_add_span_clamps_negative_duration(self):
        tr = Tracer(clock=fake_clock([0.0]))
        tr.add_span("x", start=5.0, end=4.0)
        assert tr.records[0].dur == 0.0

    def test_instants_separate_from_spans(self):
        tr = Tracer(clock=fake_clock([0.0, 1.0, 2.0, 3.0]))
        tr.instant("claim", unit=3)
        tr.add_span("chunk", start=1.0, end=2.0)
        assert [r.name for r in tr.events()] == ["claim"]
        assert [r.name for r in tr.spans()] == ["chunk"]
        assert tr.find("claim")[0].args == {"unit": 3}

    def test_default_tid_labels_worker_records(self):
        tr = Tracer(clock=fake_clock([0.0, 1.0, 2.0, 3.0]))
        tr2 = Tracer(clock=fake_clock([0.0, 1.0, 2.0]), default_tid=4)
        with tr2.span("w"):
            pass
        tr.instant("p")
        assert tr2.records[0].tid == 4
        assert tr.records[0].tid == 0


class TestDrainIngest:
    def test_drain_detaches_and_ingest_refolds(self):
        tr = Tracer(clock=fake_clock([0.0, 1.0]))
        tr.instant("a")
        shipped = tr.drain()
        assert tr.records == []
        assert [r.name for r in shipped] == ["a"]
        parent = Tracer(clock=fake_clock([0.0]))
        parent.ingest(shipped)
        assert [r.name for r in parent.records] == ["a"]

    def test_records_are_picklable(self):
        import pickle

        rec = TraceRecord("chunk", "worker", 2, 1.5, 0.25, {"unit": 3})
        back = pickle.loads(pickle.dumps(rec))
        assert back == rec


class TestChromeExport:
    def _traced(self):
        tr = Tracer(clock=fake_clock([10.0, 11.0, 12.0]))
        tr.add_span("root", start=10.0, end=13.0, cat="contraction")
        tr.add_span("chunk", start=11.0, end=12.0, tid=2, unit=0)
        tr.instant("claim", tid=2)
        return tr

    def test_chrome_shape_and_rebasing(self):
        doc = to_chrome_trace(self._traced())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        evs = doc["traceEvents"]
        meta = [e for e in evs if e["ph"] == "M"]
        spans = [e for e in evs if e["ph"] == "X"]
        instants = [e for e in evs if e["ph"] == "i"]
        # process_name + one thread_name per tid
        assert {m["name"] for m in meta} == {
            "process_name", "thread_name"
        }
        assert all(e["pid"] == TRACE_PID for e in evs)
        root = next(e for e in spans if e["name"] == "root")
        assert root["ts"] == 0.0  # rebased against origin
        assert root["dur"] == pytest.approx(3e6)
        chunk = next(e for e in spans if e["name"] == "chunk")
        assert chunk["ts"] == pytest.approx(1e6)
        assert chunk["tid"] == 2
        assert instants[0]["s"] == "t"

    def test_chrome_json_serializable_and_written(self, tmp_path):
        tr = self._traced()
        path = tmp_path / "trace.json"
        tr.write(path)
        doc = json.loads(path.read_text())
        assert doc == json.loads(json.dumps(tr.to_chrome()))

    def test_origin_floors_on_earliest_record(self):
        # a worker record that predates the parent tracer's t0 must not
        # produce negative export timestamps
        tr = Tracer(clock=fake_clock([10.0]))
        tr.add_span("early", start=8.0, end=9.0, tid=1)
        doc = to_chrome_trace(tr)
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 0.0


class TestSpanTree:
    def test_tree_indents_by_containment(self):
        tr = Tracer(clock=fake_clock([0.0, 0.5]))
        tr.add_span("root", start=0.0, end=10.0)
        tr.add_span("stage", start=1.0, end=4.0)
        tr.add_span("chunk", start=2.0, end=3.0, tid=1)
        tr.instant("claim", tid=1)
        text = format_span_tree(tr)
        lines = text.splitlines()
        assert lines[0].startswith("[parent]")
        root_line = next(line for line in lines if "root" in line)
        stage_line = next(line for line in lines if "stage" in line)
        assert len(stage_line) - len(stage_line.lstrip()) > (
            len(root_line) - len(root_line.lstrip())
        )
        assert any(line.startswith("[worker 0]") for line in lines)

    def test_empty_tracer(self):
        assert "no spans" in format_span_tree(Tracer())


class TestNullTracer:
    def test_all_methods_are_noops(self):
        nt = NullTracer()
        with nt.span("x") as sp:
            sp.set(a=1)
        nt.add_span("y", start=0.0, end=1.0)
        nt.instant("z")
        nt.ingest([TraceRecord("a", "b", 0, 0.0)])
        assert nt.records == []
        assert nt.drain() == []
        assert not nt.enabled

    def test_null_span_is_shared_singleton(self):
        assert NULL_TRACER.span("a") is _NULL_SPAN
        assert NULL_TRACER.span("b") is _NULL_SPAN

    def test_null_tracer_exports_cleanly(self):
        assert to_chrome_trace(NULL_TRACER)["traceEvents"]
        assert "no spans" in format_span_tree(NULL_TRACER)
