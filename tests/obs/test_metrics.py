"""Unit tests for :class:`repro.obs.MetricsRegistry`."""

from __future__ import annotations

import json

import pytest

from repro.core.profile import (
    AccessKind,
    AccessPattern,
    DataObject,
    RunProfile,
)
from repro.core.stages import Stage
from repro.obs import MetricsRegistry


@pytest.fixture
def profile():
    p = RunProfile("sparta")
    p.add_time(Stage.INPUT_PROCESSING, 0.25)
    p.add_time(Stage.ACCUMULATION, 0.75)
    p.bump("hash_probes", 100)
    p.bump("ft_worker_failures", 1)
    p.bump("ft_respawns", 2)
    p.set_flag("degraded", "serial")
    p.note_object_bytes(DataObject.HTY, 4096)
    p.record_traffic(
        DataObject.X, Stage.INPUT_PROCESSING,
        AccessKind.READ, AccessPattern.SEQUENTIAL, 1000,
    )
    p.record_traffic(
        DataObject.X, Stage.ACCUMULATION,
        AccessKind.READ, AccessPattern.SEQUENTIAL, 500,
    )
    p.record_traffic(
        DataObject.HTA, Stage.ACCUMULATION,
        AccessKind.WRITE, AccessPattern.RANDOM, 300,
    )
    return p


class TestBasics:
    def test_set_get_inc_len_contains(self):
        m = MetricsRegistry()
        m.set("a.b", 1)
        m.inc("a.b", 2)
        m.inc("new")
        assert m.get("a.b") == 3
        assert m.get("missing", -1) == -1
        assert len(m) == 2
        assert "new" in m and "missing" not in m

    def test_as_dict_is_key_sorted(self):
        m = MetricsRegistry()
        m.set("z", 1)
        m.set("a", 2)
        assert list(m.as_dict()) == ["a", "z"]


class TestRecordProfile:
    def test_namespaces(self, profile):
        m = MetricsRegistry.from_profile(profile)
        d = m.as_dict()
        assert d["run.engine"] == "sparta"
        assert d["run.total_seconds"] == pytest.approx(1.0)
        assert d["run.stage_seconds.accumulation"] == 0.75
        assert d["run.counters.hash_probes"] == 100
        assert d["run.counters.ft_worker_failures"] == 1
        assert d["run.counters.ft_respawns"] == 2
        assert d["run.flags.degraded"] == "serial"
        assert d["run.object_bytes.HtY"] == 4096

    def test_traffic_cells_aggregate_across_stages(self, profile):
        d = MetricsRegistry.from_profile(profile).as_dict()
        # both X/read/sequential records (different stages) fold into
        # one Table-2 cell total
        assert d["run.traffic.X.read.sequential_bytes"] == 1500
        assert d["run.traffic.HtA.write.random_bytes"] == 300
        assert d["run.traffic.total_bytes"] == 1800

    def test_custom_prefix_allows_multiple_runs(self, profile):
        m = MetricsRegistry()
        m.record_profile(profile, prefix="serial")
        m.record_profile(profile, prefix="parallel")
        d = m.as_dict()
        assert "serial.engine" in d and "parallel.engine" in d

    def test_json_round_trip(self, profile, tmp_path):
        m = MetricsRegistry.from_profile(profile)
        path = tmp_path / "metrics.json"
        m.write(path)
        assert json.loads(path.read_text()) == m.as_dict()

    def test_record_caches_exports_all_three_caches(self):
        from repro.core.codegen import default_kernel_cache
        from repro.core.codegen.signature import KernelSignature

        # Touch the kernel cache so at least one counter is nonzero.
        sig = KernelSignature(
            x_order=3, y_order=2, contract_dims=(4,),
            free_dims=(6,), accumulator="hash", dtype="float64",
        )
        default_kernel_cache().get_fused_kernel(sig)
        d = MetricsRegistry().record_caches().as_dict()
        for which in ("hty", "plan", "kernel"):
            for stat in ("hits", "misses", "evictions", "hit_rate"):
                assert f"cache.{which}.{stat}" in d
        kc = default_kernel_cache().stats
        assert d["cache.kernel.hits"] == kc.hits
        assert d["cache.kernel.misses"] == kc.misses
        assert d["cache.kernel.hits"] + d["cache.kernel.misses"] > 0
        lookups = kc.hits + kc.misses
        assert d["cache.kernel.hit_rate"] == pytest.approx(
            kc.hits / lookups
        )


class TestRecordSimulated:
    def test_simulated_run_namespaces(self, profile):
        from repro.memory import HMSimulator, all_pmm_placement, dram, pmm
        from repro.memory.devices import HeterogeneousMemory

        peak = max(profile.peak_bytes(), 1)
        sim = HMSimulator(
            HeterogeneousMemory(dram=dram(peak), pmm=pmm(peak * 10))
        )
        run = sim.simulate(profile, all_pmm_placement())
        d = MetricsRegistry().record_simulated(run).as_dict()
        base = f"hm.{run.policy}"
        assert d[f"{base}.total_seconds"] == pytest.approx(
            run.total_seconds
        )
        assert f"{base}.amplification" in d
        assert f"{base}.stage.accumulation.seconds" in d
        assert f"{base}.stage.accumulation.penalty_seconds" in d
        # device attribution is present and conserves run time
        dev = {
            k: v for k, v in d.items()
            if k.startswith(f"{base}.device_seconds.")
        }
        assert dev
        assert sum(dev.values()) == pytest.approx(run.total_seconds)

    def test_device_seconds_pure_compute_charged_to_dram(self):
        from repro.memory.placement import DRAM
        from repro.memory.simulator import SimulatedRun, SimulatedStage

        run = SimulatedRun(
            policy="p",
            stages=[
                SimulatedStage(
                    Stage.ACCUMULATION, 2.0, 0.0, 0.0, {}
                )
            ],
            amplification=1.0,
        )
        assert run.device_seconds()[DRAM] == pytest.approx(2.0)


class TestPeakRssSampler:
    def test_read_rss_positive_on_linux(self):
        from repro.obs import read_rss_bytes

        rss = read_rss_bytes()
        assert rss > 0, "procfs should report a resident set here"

    def test_sampler_tracks_allocation(self):
        import numpy as np

        from repro.obs import PeakRssSampler, read_rss_bytes

        with PeakRssSampler(interval=0.001) as sampler:
            ballast = np.ones(4 << 20, dtype=np.float64)  # 32 MiB
            ballast[::4096] += 1.0  # touch pages
        del ballast
        assert sampler.samples >= 1
        assert sampler.peak_bytes >= read_rss_bytes() - (64 << 20)
        assert sampler.peak_bytes > 0

    def test_stop_idempotent_and_records(self):
        from repro.obs import MetricsRegistry, PeakRssSampler

        sampler = PeakRssSampler().start()
        peak = sampler.stop()
        assert sampler.stop() >= 0  # second stop is harmless
        reg = MetricsRegistry()
        sampler.record(reg)
        assert reg.get("memory.peak_rss") == sampler.peak_bytes
        assert reg.get("memory.rss_samples") == sampler.samples
        assert peak == sampler.peak_bytes or sampler.peak_bytes >= peak

    def test_restart_rejected_while_running(self):
        import pytest as _pytest

        from repro.obs import PeakRssSampler

        sampler = PeakRssSampler().start()
        try:
            with _pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()
