"""Integration tests spanning multiple subsystems."""

import numpy as np
import pytest

from repro.core import contract
from repro.datasets import make_case, t2_amplitudes, eri_tensor
from repro.memory import (
    HMSimulator,
    all_dram_placement,
    all_pmm_placement,
    dram,
    pmm,
    verify_table2,
)
from repro.memory.devices import HeterogeneousMemory
from repro.memory.policies import sparta_policy_characterized
from repro.parallel import ScalabilityModel, parallel_sparta
from repro.tensor import read_tns, write_tns


class TestFullPipeline:
    """File -> contraction -> placement -> simulation, end to end."""

    def test_io_to_simulation(self, tmp_path):
        case = make_case("uber", 2, scale=0.1, seed=0)
        # Round-trip the inputs through the FROSTT format first.
        x_path, y_path = tmp_path / "x.tns", tmp_path / "y.tns"
        write_tns(case.x, x_path)
        write_tns(case.y, y_path)
        x = read_tns(x_path, shape=case.x.shape)
        y = read_tns(y_path, shape=case.y.shape)
        assert x.allclose(case.x)

        res = contract(
            x, y, case.cx, case.cy,
            method="sparta", swap_larger_to_y=False,
        )
        assert verify_table2(res.profile) == []

        peak = max(res.profile.peak_bytes(), 1)
        hm = HeterogeneousMemory(
            dram=dram(max(peak // 2, 1)), pmm=pmm(peak * 10)
        )
        sim = HMSimulator(hm)
        policy = sparta_policy_characterized(
            res.profile, sim, hm.dram.capacity_bytes
        )
        t_sparta = sim.simulate(res.profile, policy).total_seconds
        t_optane = sim.simulate(
            res.profile, all_pmm_placement()
        ).total_seconds
        t_dram = sim.simulate(
            res.profile, all_dram_placement()
        ).total_seconds
        assert t_dram <= t_sparta < t_optane

    def test_chained_contraction(self):
        """SpTC output feeds a subsequent SpTC (the paper's motivation
        for output sorting: 'using Z as an input for any subsequent
        SpTC computations')."""
        case = make_case("nips", 2, scale=0.05, seed=1)
        z1 = contract(
            case.x, case.y, case.cx, case.cy, method="vectorized"
        ).tensor
        assert z1.is_sorted()
        # Contract Z with Y again over Z's trailing modes.
        n = 2
        cz = tuple(range(z1.order - n, z1.order))
        y2_dims = tuple(z1.shape[m] for m in cz) + (5,)
        from repro.tensor import random_tensor

        y2 = random_tensor(y2_dims, 200, seed=3)
        z2 = contract(z1, y2, cz, (0, 1), method="vectorized")
        ref = contract(
            z1, y2, cz, (0, 1), method="sparta", swap_larger_to_y=False
        )
        assert z2.tensor.allclose(ref.tensor)

    def test_quantum_workflow(self):
        """CCSD-style ladder contraction with cutoff, both engines."""
        t2 = t2_amplitudes(6, 10, decay=0.9, seed=11)
        v = eri_tensor(6, 10, decay=1.1, seed=12)
        res_sp = contract(t2, v, (2, 3), (0, 1), method="sparta")
        res_vec = contract(t2, v, (2, 3), (0, 1), method="vectorized")
        assert res_sp.tensor.allclose(res_vec.tensor)
        assert res_sp.tensor.shape == (6, 6, 10, 10)

    def test_parallel_plus_model(self):
        case = make_case("vast", 1, scale=0.08, seed=2)
        par = parallel_sparta(
            case.x, case.y, case.cx, case.cy, threads=3, planner="off"
        )
        serial = contract(
            case.x, case.y, case.cx, case.cy,
            method="sparta", swap_larger_to_y=False,
        )
        assert par.result.tensor.allclose(serial.tensor)
        pred = ScalabilityModel().predict(serial.profile, 12)
        assert 1.0 < pred.speedup <= 12.0

    def test_engines_consistent_on_every_registry_dataset(self):
        from repro.datasets import dataset_names

        for name in dataset_names():
            case = make_case(name, 1, scale=0.03, seed=7)
            a = contract(
                case.x, case.y, case.cx, case.cy, method="vectorized"
            )
            b = contract(
                case.x, case.y, case.cx, case.cy,
                method="sparta", swap_larger_to_y=False,
            )
            assert a.tensor.allclose(b.tensor), name
