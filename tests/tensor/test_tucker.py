"""Tests for the Tucker (HOOI) decomposition."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import SparseTensor
from repro.tensor.tucker import TuckerModel, hooi


def _low_multilinear_rank(shape, ranks, seed):
    rng = np.random.default_rng(seed)
    core = rng.standard_normal(ranks)
    dense = core
    for mode, (d, r) in enumerate(zip(shape, ranks)):
        f = np.linalg.qr(rng.standard_normal((d, r)))[0]
        dense = np.moveaxis(
            np.tensordot(f, dense, axes=(1, mode)), 0, mode
        )
    return SparseTensor.from_dense(dense)


class TestHOOI:
    def test_recovers_exact_low_rank(self):
        t = _low_multilinear_rank((10, 9, 8), (3, 2, 4), seed=231)
        model = hooi(t, (3, 2, 4), iterations=40, seed=1)
        assert model.fit > 0.9999
        assert model.to_dense() == pytest.approx(
            t.to_dense(), abs=1e-6 * np.abs(t.to_dense()).max()
        )

    def test_factors_orthonormal(self):
        t = _low_multilinear_rank((8, 8, 8), (3, 3, 3), seed=232)
        model = hooi(t, (3, 3, 3), iterations=20)
        for f in model.factors:
            assert f.T @ f == pytest.approx(np.eye(f.shape[1]), abs=1e-9)

    def test_fit_monotone(self):
        t = _low_multilinear_rank((9, 7, 8), (4, 3, 3), seed=233)
        model = hooi(t, (2, 2, 2), iterations=15)
        fits = np.asarray(model.fits)
        assert (np.diff(fits) > -1e-8).all()

    def test_bigger_ranks_fit_better(self):
        t = _low_multilinear_rank((10, 10, 10), (5, 5, 5), seed=234)
        small = hooi(t, (2, 2, 2), iterations=25).fit
        big = hooi(t, (5, 5, 5), iterations=25).fit
        assert big > small

    def test_core_shape(self):
        t = _low_multilinear_rank((6, 7, 8), (2, 3, 4), seed=235)
        model = hooi(t, (2, 3, 4), iterations=10)
        assert model.ranks == (2, 3, 4)
        assert model.core.shape == (2, 3, 4)

    def test_order_4(self):
        t = _low_multilinear_rank((6, 5, 6, 5), (2, 2, 2, 2), seed=236)
        model = hooi(t, (2, 2, 2, 2), iterations=30)
        assert model.fit > 0.999

    def test_full_rank_is_exact(self):
        from repro.tensor import random_tensor

        t = random_tensor((5, 6, 4), 40, seed=237)
        model = hooi(t, t.shape, iterations=5)
        assert model.fit > 0.9999

    def test_zero_tensor(self):
        model = hooi(SparseTensor.empty((4, 4, 4)), (2, 2, 2))
        assert model.fit == 1.0

    def test_validation(self):
        t = _low_multilinear_rank((5, 5, 5), (2, 2, 2), seed=238)
        with pytest.raises(ShapeError):
            hooi(t, (2, 2))
        with pytest.raises(ShapeError):
            hooi(t, (2, 2, 9))
        with pytest.raises(ShapeError):
            hooi(t, (2, 2, 0))
        with pytest.raises(ShapeError):
            hooi(t, (2, 2, 2), iterations=0)
