"""Tests for the CSF format and its search asymmetry."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import CSFTensor, SparseTensor, random_tensor


@pytest.fixture
def tensor():
    return random_tensor((6, 7, 8), 120, seed=42).sort()


@pytest.fixture
def csf(tensor):
    return CSFTensor.from_coo(tensor)


class TestRoundTrip:
    def test_round_trip(self, tensor, csf):
        assert csf.to_coo().allclose(tensor)

    def test_nnz_preserved(self, tensor, csf):
        assert csf.nnz == tensor.nnz

    def test_empty(self):
        c = CSFTensor.from_coo(SparseTensor.empty((3, 4)))
        assert c.nnz == 0
        assert c.to_coo().nnz == 0

    def test_single_element(self):
        t = SparseTensor([[1, 2, 3]], [5.0], (4, 4, 4))
        c = CSFTensor.from_coo(t)
        assert c.to_coo().allclose(t)

    def test_order_4(self):
        t = random_tensor((4, 5, 6, 7), 200, seed=3)
        assert CSFTensor.from_coo(t).to_coo().allclose(t.sort())

    def test_compression_reduces_index_storage(self, tensor, csf):
        # CSF stores each distinct prefix once; COO repeats it per nnz.
        assert csf.nbytes < tensor.nbytes

    def test_fiber_counts_monotonic(self, csf):
        counts = [csf.num_fibers(level) for level in range(csf.order)]
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        assert counts[-1] == csf.nnz  # distinct coordinates


class TestPrefixSearch:
    def test_finds_existing_prefix(self, tensor, csf):
        row = tuple(int(v) for v in tensor.indices[17])
        s, e = csf.search_prefix(row[:2])
        coo = csf.to_coo()
        expected = np.flatnonzero(
            np.all(coo.indices[:, :2] == row[:2], axis=1)
        )
        assert (e - s) == expected.shape[0]
        assert s == expected[0]

    def test_full_coordinate(self, tensor, csf):
        row = tuple(int(v) for v in tensor.indices[3])
        s, e = csf.search_prefix(row)
        assert e - s == 1
        assert csf.values[s] == pytest.approx(float(tensor.values[3]))

    def test_absent_prefix(self):
        # A sparse tensor guarantees absent 2-prefixes exist.
        sparse = random_tensor((6, 7, 8), 15, seed=44).sort()
        c = CSFTensor.from_coo(sparse)
        present = {
            (int(a), int(b)) for a, b in sparse.indices[:, :2]
        }
        missing = next(
            (i, j)
            for i in range(sparse.shape[0])
            for j in range(sparse.shape[1])
            if (i, j) not in present
        )
        assert c.search_prefix(missing) == (0, 0)

    def test_absent_leading_index(self, tensor, csf):
        present = set(int(v) for v in tensor.indices[:, 0])
        missing = next(
            i for i in range(tensor.shape[0]) if i not in present
        ) if len(present) < tensor.shape[0] else None
        if missing is not None:
            assert csf.search_prefix((missing,)) == (0, 0)

    def test_single_mode_prefix_covers_all_children(self, tensor, csf):
        first = int(tensor.indices[0, 0])
        s, e = csf.search_prefix((first,))
        coo = csf.to_coo()
        expected = int(np.sum(coo.indices[:, 0] == first))
        assert e - s == expected

    def test_bad_prefix_length(self, csf):
        with pytest.raises(ShapeError):
            csf.search_prefix(())
        with pytest.raises(ShapeError):
            csf.search_prefix((0, 0, 0, 0))


class TestTrailingSearch:
    def test_matches_scan(self, tensor, csf):
        row = tuple(int(v) for v in tensor.indices[5])
        hits = csf.search_trailing(row[1:])
        coo = csf.to_coo()
        expected = np.flatnonzero(
            np.all(coo.indices[:, 1:] == row[1:], axis=1)
        )
        assert np.array_equal(hits, expected)

    def test_absent(self, tensor, csf):
        present = {
            (int(a), int(b)) for a, b in tensor.indices[:, 1:]
        }
        missing = next(
            (i, j)
            for i in range(tensor.shape[1])
            for j in range(tensor.shape[2])
            if (i, j) not in present
        )
        assert csf.search_trailing(missing).size == 0

    def test_bad_length(self, csf):
        with pytest.raises(ShapeError):
            csf.search_trailing(())
