"""Tests for tensor slicing/selection."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import SparseTensor, random_tensor


@pytest.fixture
def t():
    return random_tensor((6, 7, 8), 80, seed=271)


class TestSlice:
    def test_matches_dense(self, t):
        dense = t.to_dense()
        for mode in range(t.order):
            for index in (0, t.shape[mode] - 1):
                got = t.slice(mode, index).to_dense()
                ref = np.take(dense, index, axis=mode)
                assert got == pytest.approx(ref), (mode, index)

    def test_drops_mode(self, t):
        s = t.slice(1, 3)
        assert s.order == 2
        assert s.shape == (6, 8)

    def test_empty_slice(self):
        t = SparseTensor([[0, 0]], [1.0], (3, 3))
        assert t.slice(0, 2).nnz == 0

    def test_out_of_range(self, t):
        with pytest.raises(ShapeError):
            t.slice(0, 6)
        with pytest.raises(ShapeError):
            t.slice(5, 0)

    def test_order1_rejected(self):
        v = SparseTensor([[1]], [2.0], (4,))
        with pytest.raises(ShapeError):
            v.slice(0, 1)


class TestSelect:
    def test_matches_dense_masking(self, t):
        dense = t.to_dense()
        keep = [1, 4, 5]
        got = t.select(0, keep).to_dense()
        ref = np.zeros_like(dense)
        ref[keep] = dense[keep]
        assert got == pytest.approx(ref)

    def test_shape_unchanged(self, t):
        assert t.select(2, [0, 1]).shape == t.shape

    def test_duplicates_ignored(self, t):
        a = t.select(0, [2, 2, 3])
        b = t.select(0, [2, 3])
        assert a.allclose(b)

    def test_empty_selection(self, t):
        assert t.select(0, []).nnz == 0

    def test_select_all_is_identity(self, t):
        assert t.select(1, range(t.shape[1])).allclose(t)

    def test_out_of_range(self, t):
        with pytest.raises(ShapeError):
            t.select(0, [99])

    def test_slice_select_consistency(self, t):
        """select then slice == slice directly."""
        sliced = t.slice(0, 2)
        via_select = t.select(0, [2]).slice(0, 2)
        assert sliced.allclose(via_select)
