"""Tests for block-sparse tensors."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import BlockSparseTensor, random_tensor


@pytest.fixture
def dense():
    rng = np.random.default_rng(8)
    d = rng.standard_normal((8, 6, 4))
    d[np.abs(d) < 0.8] = 0.0  # make it sparse
    return d


class TestConstruction:
    def test_grid(self):
        t = BlockSparseTensor((8, 6), (2, 3))
        assert t.grid == (4, 2)
        assert t.num_blocks == 0

    def test_indivisible_rejected(self):
        with pytest.raises(ShapeError):
            BlockSparseTensor((7, 6), (2, 3))

    def test_mode_count_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            BlockSparseTensor((8, 6), (2,))

    def test_set_block_validates_key(self):
        t = BlockSparseTensor((8, 6), (2, 3))
        with pytest.raises(ShapeError):
            t.set_block((4, 0), np.zeros((2, 3)))

    def test_set_block_validates_shape(self):
        t = BlockSparseTensor((8, 6), (2, 3))
        with pytest.raises(ShapeError):
            t.set_block((0, 0), np.zeros((3, 2)))

    def test_stored_elements(self):
        t = BlockSparseTensor((8, 6), (2, 3))
        t.set_block((0, 0), np.ones((2, 3)))
        t.set_block((1, 1), np.ones((2, 3)))
        assert t.stored_elements == 12
        assert t.nnz == 12


class TestConversions:
    def test_dense_round_trip(self, dense):
        t = BlockSparseTensor.from_dense(dense, (2, 3, 2))
        assert t.to_dense() == pytest.approx(dense)

    def test_from_dense_skips_zero_blocks(self):
        d = np.zeros((4, 4))
        d[0, 0] = 1.0
        t = BlockSparseTensor.from_dense(d, (2, 2))
        assert t.num_blocks == 1

    def test_coo_round_trip(self, dense):
        t = BlockSparseTensor.from_dense(dense, (2, 3, 2))
        coo = t.to_coo()
        assert coo.to_dense() == pytest.approx(dense)

    def test_from_coo(self):
        sp = random_tensor((8, 6), 20, seed=4)
        t = BlockSparseTensor.from_coo(sp, (2, 3))
        assert t.to_dense() == pytest.approx(sp.to_dense())

    def test_from_coo_empty(self):
        from repro.tensor import SparseTensor

        t = BlockSparseTensor.from_coo(SparseTensor.empty((4, 4)), (2, 2))
        assert t.num_blocks == 0

    def test_block_count_bounded_by_nnz(self):
        sp = random_tensor((16, 16), 10, seed=5)
        t = BlockSparseTensor.from_coo(sp, (2, 2))
        assert t.num_blocks <= sp.nnz


class TestPrune:
    def test_prune_removes_small_values(self):
        t = BlockSparseTensor((4, 4), (2, 2))
        block = np.array([[1e-12, 1.0], [0.5, 1e-10]])
        t.set_block((0, 0), block)
        p = t.prune(1e-8)
        assert p.num_blocks == 1
        assert p.nnz == 2

    def test_prune_drops_empty_blocks(self):
        t = BlockSparseTensor((4, 4), (2, 2))
        t.set_block((0, 0), np.full((2, 2), 1e-12))
        t.set_block((1, 1), np.ones((2, 2)))
        p = t.prune(1e-8)
        assert p.num_blocks == 1
        assert (1, 1) in p.blocks
