"""Tests for the COO sparse tensor."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import SparseTensor, random_tensor


class TestConstruction:
    def test_basic(self, tiny_tensor):
        assert tiny_tensor.order == 4
        assert tiny_tensor.nnz == 4
        assert tiny_tensor.shape == (2, 2, 2, 3)

    def test_density(self):
        t = SparseTensor([[0, 0], [1, 1]], [1.0, 2.0], (2, 2))
        assert t.density == pytest.approx(0.5)

    def test_empty(self):
        t = SparseTensor.empty((3, 4))
        assert t.nnz == 0
        assert t.to_dense().shape == (3, 4)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ShapeError):
            SparseTensor([[0, 5]], [1.0], (2, 3))

    def test_negative_index_rejected(self):
        with pytest.raises(ShapeError):
            SparseTensor([[-1, 0]], [1.0], (2, 3))

    def test_mismatched_values_rejected(self):
        with pytest.raises(ShapeError):
            SparseTensor([[0, 0]], [1.0, 2.0], (2, 2))

    def test_wrong_index_width_rejected(self):
        with pytest.raises(ShapeError):
            SparseTensor([[0, 0, 0]], [1.0], (2, 2))

    def test_zero_extent_rejected(self):
        with pytest.raises(ShapeError):
            SparseTensor.empty((0, 3))

    def test_nbytes_positive(self, tiny_tensor):
        assert tiny_tensor.nbytes == 4 * (4 * 8 + 8)


class TestDenseRoundTrip:
    def test_round_trip(self, tiny_tensor):
        dense = tiny_tensor.to_dense()
        back = SparseTensor.from_dense(dense)
        assert back.allclose(tiny_tensor)

    def test_from_dense_cutoff(self):
        dense = np.array([[1e-9, 1.0], [0.5, -1e-10]])
        t = SparseTensor.from_dense(dense, cutoff=1e-8)
        assert t.nnz == 2

    def test_to_dense_sums_duplicates(self):
        t = SparseTensor([[0, 0], [0, 0]], [1.0, 2.0], (1, 1))
        assert t.to_dense()[0, 0] == pytest.approx(3.0)

    def test_huge_dense_refused(self):
        t = SparseTensor.empty((100_000, 100_000))
        with pytest.raises(ShapeError):
            t.to_dense()


class TestPermuteSort:
    def test_permute_exchanges_columns(self, tiny_tensor):
        p = tiny_tensor.permute((3, 2, 1, 0))
        assert p.shape == (3, 2, 2, 2)
        assert np.array_equal(p.indices, tiny_tensor.indices[:, ::-1])

    def test_permute_round_trip(self, tiny_tensor):
        p = tiny_tensor.permute((1, 2, 3, 0)).permute((3, 0, 1, 2))
        assert np.array_equal(p.indices, tiny_tensor.indices)
        assert p.shape == tiny_tensor.shape

    def test_permute_requires_all_modes(self, tiny_tensor):
        with pytest.raises(ShapeError):
            tiny_tensor.permute((0, 1))

    def test_permute_rejects_duplicates(self, tiny_tensor):
        with pytest.raises(ShapeError):
            tiny_tensor.permute((0, 0, 1, 2))

    def test_sort_orders_lexicographically(self):
        t = random_tensor((9, 8, 7), 150, seed=5)
        shuffled = SparseTensor(
            t.indices[::-1], t.values[::-1], t.shape
        )
        s = shuffled.sort()
        assert s.is_sorted()
        assert s.allclose(t)

    def test_is_sorted_detects_unsorted(self):
        t = SparseTensor([[1, 0], [0, 0]], [1.0, 2.0], (2, 2))
        assert not t.is_sorted()
        assert t.sort().is_sorted()

    def test_sort_empty(self):
        t = SparseTensor.empty((3, 3))
        assert t.sort().nnz == 0
        assert t.is_sorted()

    def test_sort_preserves_value_pairing(self):
        t = random_tensor((5, 5), 20, seed=7)
        s = t.sort()
        assert s.to_dense() == pytest.approx(t.to_dense())


class TestCoalescePrune:
    def test_coalesce_sums_duplicates(self):
        t = SparseTensor(
            [[0, 1], [0, 1], [1, 0]], [1.0, 2.5, 4.0], (2, 2)
        )
        c = t.coalesce()
        assert c.nnz == 2
        assert c.to_dense()[0, 1] == pytest.approx(3.5)

    def test_coalesce_no_duplicates_is_sort(self):
        t = random_tensor((6, 6), 18, seed=9)
        c = t.coalesce()
        assert c.nnz == t.nnz
        assert c.is_sorted()

    def test_prune_drops_small(self):
        t = SparseTensor([[0, 0], [1, 1]], [1e-12, 1.0], (2, 2))
        assert t.prune(1e-8).nnz == 1

    def test_prune_keeps_negatives(self):
        t = SparseTensor([[0, 0]], [-5.0], (1, 1))
        assert t.prune(1.0).nnz == 1


class TestFiberPointers:
    def test_groups_by_leading_modes(self):
        t = SparseTensor(
            [[0, 0, 0], [0, 0, 1], [0, 1, 0], [2, 0, 0]],
            [1.0, 2.0, 3.0, 4.0],
            (3, 2, 2),
        )
        ptr = t.fiber_pointers(1)
        assert ptr.tolist() == [0, 3, 4]
        ptr2 = t.fiber_pointers(2)
        assert ptr2.tolist() == [0, 2, 3, 4]

    def test_zero_modes(self, tiny_tensor):
        assert tiny_tensor.fiber_pointers(0).tolist() == [0, 4]

    def test_empty_tensor(self):
        assert SparseTensor.empty((2, 2)).fiber_pointers(1).tolist() == [0]

    def test_out_of_range(self, tiny_tensor):
        with pytest.raises(ShapeError):
            tiny_tensor.fiber_pointers(5)


class TestComparison:
    def test_allclose_ignores_order(self):
        t = random_tensor((5, 5, 5), 30, seed=11)
        shuffled = SparseTensor(t.indices[::-1], t.values[::-1], t.shape)
        assert t.allclose(shuffled)

    def test_allclose_detects_value_change(self):
        t = random_tensor((5, 5), 10, seed=12)
        other = SparseTensor(t.indices, t.values * 1.01, t.shape)
        assert not t.allclose(other)

    def test_allclose_different_shape(self):
        a = SparseTensor.empty((2, 2))
        b = SparseTensor.empty((2, 3))
        assert not a.allclose(b)

    def test_iteration(self, tiny_tensor):
        items = list(tiny_tensor)
        assert len(items) == 4
        assert items[0] == ((0, 0, 1, 2), 1.0)

    def test_copy_is_deep(self, tiny_tensor):
        c = tiny_tensor.copy()
        c.values[0] = 99.0
        assert tiny_tensor.values[0] == 1.0
