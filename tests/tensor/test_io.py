"""Tests for FROSTT .tns and binary I/O."""

import io

import pytest

from repro.errors import FormatError
from repro.tensor import (
    SparseTensor,
    random_tensor,
    read_bin,
    read_tns,
    tns_string,
    write_bin,
    write_tns,
)
from repro.tensor.io import read_tns_chunks


class TestTns:
    def test_round_trip_file(self, tmp_path):
        t = random_tensor((5, 6, 7), 40, seed=1)
        path = tmp_path / "t.tns"
        write_tns(t, path)
        back = read_tns(path, shape=t.shape)
        assert back.allclose(t)

    def test_round_trip_string(self):
        t = random_tensor((4, 4), 8, seed=2)
        back = read_tns(io.StringIO(tns_string(t)), shape=t.shape)
        assert back.allclose(t)

    def test_one_based_indices(self):
        t = SparseTensor([[0, 0]], [3.5], (2, 2))
        text = tns_string(t)
        data_line = [
            line for line in text.splitlines() if not line.startswith("#")
        ][0]
        assert data_line.split()[:2] == ["1", "1"]

    def test_shape_inferred(self):
        text = "2 3 1.5\n4 1 -2.0\n"
        t = read_tns(io.StringIO(text))
        assert t.shape == (4, 3)
        assert t.nnz == 2

    def test_comments_skipped(self):
        text = "# header\n% other comment\n1 1 1.0\n"
        assert read_tns(io.StringIO(text)).nnz == 1

    def test_inconsistent_order_rejected(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO("1 1 1.0\n1 1 1 1.0\n"))

    def test_zero_index_rejected(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO("0 1 1.0\n"))

    def test_garbage_rejected(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO("a b c\n"))

    def test_empty_rejected(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO("# nothing\n"))

    def test_short_line_rejected(self):
        with pytest.raises(FormatError):
            read_tns(io.StringIO("1\n"))

    def test_values_preserved_exactly(self):
        t = SparseTensor([[0, 1]], [0.1234567890123456789], (2, 2))
        back = read_tns(io.StringIO(tns_string(t)), shape=t.shape)
        assert back.values[0] == t.values[0]


class TestChunkedRead:
    def test_chunks_cover_file(self, tmp_path):
        t = random_tensor((8, 9, 10), 100, seed=5)
        path = tmp_path / "t.tns"
        write_tns(t, path)
        chunks = list(read_tns_chunks(path, t.shape, chunk_nnz=17))
        assert all(c.shape == t.shape for c in chunks)
        assert sum(c.nnz for c in chunks) == t.nnz
        from repro.core.streaming import merge_outputs

        assert merge_outputs(chunks).allclose(t)

    def test_single_chunk_when_large(self, tmp_path):
        t = random_tensor((5, 5), 10, seed=6)
        path = tmp_path / "t.tns"
        write_tns(t, path)
        chunks = list(read_tns_chunks(path, t.shape, chunk_nnz=10**6))
        assert len(chunks) == 1
        assert chunks[0].allclose(t)

    def test_streaming_contraction_from_file(self, tmp_path):
        """Out-of-core end to end: chunked read feeds the streaming
        contraction and matches the in-memory result."""
        from repro.core import contract
        from repro.core.streaming import contract_streaming

        x = random_tensor((6, 7), 20, seed=7)
        y = random_tensor((7, 8), 120, seed=8)
        path = tmp_path / "y.tns"
        write_tns(y, path)
        ref = contract(x, y, (1,), (0,), method="vectorized")
        res = contract_streaming(
            x, read_tns_chunks(path, y.shape, chunk_nnz=25), (1,), (0,)
        )
        assert res.tensor.allclose(ref.tensor)
        expected_parts = -(-y.nnz // 25)  # ceil division
        assert res.profile.counters["streaming_parts"] == expected_parts

    def test_order_mismatch_rejected(self, tmp_path):
        t = random_tensor((4, 4), 6, seed=9)
        path = tmp_path / "t.tns"
        write_tns(t, path)
        with pytest.raises(FormatError):
            list(read_tns_chunks(path, (4, 4, 4), chunk_nnz=10))

    def test_bad_chunk_size(self, tmp_path):
        t = random_tensor((4, 4), 6, seed=10)
        path = tmp_path / "t.tns"
        write_tns(t, path)
        with pytest.raises(FormatError):
            list(read_tns_chunks(path, (4, 4), chunk_nnz=0))


class TestBin:
    def test_round_trip(self, tmp_path):
        t = random_tensor((5, 6, 7, 8), 60, seed=3)
        path = tmp_path / "t.npz"
        write_bin(t, path)
        assert read_bin(path).allclose(t)

    def test_magic_checked(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(FormatError):
            read_bin(path)
