"""Tests for sparse tensor operations (ops module)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import SparseTensor, random_tensor
from repro.tensor.ops import (
    add,
    fold,
    inner,
    mttkrp,
    multiply,
    norm,
    scale,
    subtract,
    ttm,
    ttv,
    unfold,
)


@pytest.fixture
def pair():
    return (
        random_tensor((5, 6, 7), 40, seed=181),
        random_tensor((5, 6, 7), 35, seed=182),
    )


class TestElementwise:
    def test_add(self, pair):
        a, b = pair
        assert add(a, b).to_dense() == pytest.approx(
            a.to_dense() + b.to_dense()
        )

    def test_subtract(self, pair):
        a, b = pair
        assert subtract(a, b).to_dense() == pytest.approx(
            a.to_dense() - b.to_dense()
        )

    def test_subtract_self_is_zero(self, pair):
        a, _ = pair
        d = subtract(a, a)
        assert np.allclose(d.to_dense(), 0.0)

    def test_multiply(self, pair):
        a, b = pair
        assert multiply(a, b).to_dense() == pytest.approx(
            a.to_dense() * b.to_dense()
        )

    def test_multiply_pattern_intersection(self, pair):
        a, b = pair
        m = multiply(a, b)
        assert m.nnz <= min(a.nnz, b.nnz)

    def test_multiply_empty(self):
        a = SparseTensor.empty((3, 3))
        b = random_tensor((3, 3), 4, seed=183)
        assert multiply(a, b).nnz == 0
        assert multiply(b, a).nnz == 0

    def test_shape_mismatch(self):
        a = random_tensor((3, 3), 4, seed=184)
        b = random_tensor((3, 4), 4, seed=185)
        for op in (add, subtract, multiply, inner):
            with pytest.raises(ShapeError):
                op(a, b)

    def test_scale(self, pair):
        a, _ = pair
        assert scale(a, -2.5).to_dense() == pytest.approx(
            -2.5 * a.to_dense()
        )


class TestScalars:
    def test_frobenius_norm(self, pair):
        a, _ = pair
        assert norm(a) == pytest.approx(np.linalg.norm(a.to_dense()))

    def test_l1_norm(self, pair):
        a, _ = pair
        assert norm(a, 1) == pytest.approx(np.abs(a.to_dense()).sum())

    def test_inf_norm(self, pair):
        a, _ = pair
        assert norm(a, np.inf) == pytest.approx(
            np.abs(a.to_dense()).max()
        )

    def test_norm_empty(self):
        assert norm(SparseTensor.empty((2, 2))) == 0.0

    def test_bad_norm_order(self, pair):
        with pytest.raises(ShapeError):
            norm(pair[0], 3)

    def test_inner(self, pair):
        a, b = pair
        assert inner(a, b) == pytest.approx(
            float(np.sum(a.to_dense() * b.to_dense()))
        )

    def test_inner_with_self_is_norm_squared(self, pair):
        a, _ = pair
        assert inner(a, a) == pytest.approx(norm(a) ** 2)


class TestTTM:
    def test_matches_tensordot(self, pair):
        a, _ = pair
        rng = np.random.default_rng(0)
        for mode in range(a.order):
            m = rng.standard_normal((4, a.shape[mode]))
            got = ttm(a, m, mode)
            ref = np.moveaxis(
                np.tensordot(m, a.to_dense(), axes=(1, mode)), 0, mode
            )
            assert got == pytest.approx(ref), mode

    def test_shape(self, pair):
        a, _ = pair
        m = np.ones((9, a.shape[1]))
        assert ttm(a, m, 1).shape == (5, 9, 7)

    def test_empty(self):
        t = SparseTensor.empty((3, 4))
        assert ttm(t, np.ones((2, 4)), 1) == pytest.approx(
            np.zeros((3, 2))
        )

    def test_bad_matrix(self, pair):
        a, _ = pair
        with pytest.raises(ShapeError):
            ttm(a, np.ones((4, 99)), 0)
        with pytest.raises(ShapeError):
            ttm(a, np.ones(5), 0)

    def test_bad_mode(self, pair):
        with pytest.raises(ShapeError):
            ttm(pair[0], np.ones((2, 5)), 7)


class TestTTV:
    def test_matches_tensordot(self, pair):
        a, _ = pair
        rng = np.random.default_rng(1)
        for mode in range(a.order):
            v = rng.standard_normal(a.shape[mode])
            got = ttv(a, v, mode)
            ref = np.tensordot(a.to_dense(), v, axes=(mode, 0))
            assert got.to_dense() == pytest.approx(ref), mode

    def test_output_order(self, pair):
        a, _ = pair
        assert ttv(a, np.ones(6), 1).order == 2

    def test_order1_rejected(self):
        t = SparseTensor([[0]], [1.0], (3,))
        with pytest.raises(ShapeError):
            ttv(t, np.ones(3), 0)

    def test_bad_vector(self, pair):
        with pytest.raises(ShapeError):
            ttv(pair[0], np.ones(99), 0)


class TestMTTKRP:
    def test_matches_dense_reference(self, pair):
        a, _ = pair
        rng = np.random.default_rng(2)
        rank = 3
        factors = [
            rng.standard_normal((d, rank)) for d in a.shape
        ]
        for mode in range(a.order):
            got = mttkrp(a, factors, mode)
            # Dense reference via explicit Khatri-Rao product.
            rest = [m for m in range(a.order) if m != mode]
            kr = factors[rest[0]]
            for m in rest[1:]:
                kr = (
                    kr[:, None, :] * factors[m][None, :, :]
                ).reshape(-1, rank)
            unfolded = np.moveaxis(a.to_dense(), mode, 0).reshape(
                a.shape[mode], -1
            )
            ref = unfolded @ kr
            assert got == pytest.approx(ref), mode

    def test_factor_validation(self, pair):
        a, _ = pair
        good = [np.ones((d, 2)) for d in a.shape]
        with pytest.raises(ShapeError):
            mttkrp(a, good[:2], 0)
        bad = list(good)
        bad[1] = np.ones((99, 2))
        with pytest.raises(ShapeError):
            mttkrp(a, bad, 0)
        ragged = list(good)
        ragged[2] = np.ones((a.shape[2], 5))
        with pytest.raises(ShapeError):
            mttkrp(a, ragged, 0)

    def test_empty_tensor(self):
        t = SparseTensor.empty((3, 4, 5))
        factors = [np.ones((d, 2)) for d in t.shape]
        assert mttkrp(t, factors, 1) == pytest.approx(np.zeros((4, 2)))


class TestUnfoldFold:
    def test_round_trip_all_modes(self, pair):
        a, _ = pair
        for mode in range(a.order):
            m = unfold(a, mode)
            assert m.order == 2
            assert m.shape[0] == a.shape[mode]
            back = fold(m, mode, a.shape)
            assert back.allclose(a)

    def test_unfold_matches_numpy(self, pair):
        a, _ = pair
        for mode in range(a.order):
            ref = np.moveaxis(a.to_dense(), mode, 0).reshape(
                a.shape[mode], -1
            )
            # numpy's C-order flattening of the remaining modes matches
            # our ascending-mode linearization only for mode 0; compare
            # via nnz totals + per-row sums for the general case.
            m = unfold(a, mode).to_dense()
            assert m.shape == ref.shape
            assert np.sort(m.ravel()) == pytest.approx(
                np.sort(ref.ravel())
            )

    def test_unfold_mode0_exact(self, pair):
        a, _ = pair
        ref = a.to_dense().reshape(a.shape[0], -1)
        assert unfold(a, 0).to_dense() == pytest.approx(ref)

    def test_fold_validation(self, pair):
        a, _ = pair
        m = unfold(a, 1)
        with pytest.raises(ShapeError):
            fold(m, 0, a.shape)  # wrong mode for this unfolding
        with pytest.raises(ShapeError):
            fold(a, 0, a.shape)  # not order-2
