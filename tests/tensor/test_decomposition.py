"""Tests for CP-ALS decomposition."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import SparseTensor
from repro.tensor.decomposition import CPModel, cp_als, khatri_rao


def _rank_r_tensor(shape, rank, seed):
    """An exactly rank-R sparse tensor (dense pattern, low rank)."""
    rng = np.random.default_rng(seed)
    factors = [rng.standard_normal((d, rank)) for d in shape]
    dense = None
    for r in range(rank):
        term = factors[0][:, r]
        for f in factors[1:]:
            term = np.multiply.outer(term, f[:, r])
        dense = term if dense is None else dense + term
    return SparseTensor.from_dense(dense), factors


class TestKhatriRao:
    def test_shape(self):
        a = np.ones((3, 2))
        b = np.ones((4, 2))
        assert khatri_rao([a, b]).shape == (12, 2)

    def test_column_structure(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal((3, 2)), rng.standard_normal((4, 2))
        kr = khatri_rao([a, b])
        for r in range(2):
            assert kr[:, r] == pytest.approx(
                np.kron(a[:, r], b[:, r])
            )

    def test_rank_mismatch(self):
        with pytest.raises(ShapeError):
            khatri_rao([np.ones((3, 2)), np.ones((4, 3))])

    def test_empty(self):
        with pytest.raises(ShapeError):
            khatri_rao([])


class TestCPALS:
    def test_recovers_exact_low_rank(self):
        t, _ = _rank_r_tensor((8, 9, 7), rank=3, seed=201)
        model = cp_als(t, rank=3, iterations=200, seed=1)
        assert model.fit > 0.999
        assert model.to_dense() == pytest.approx(
            t.to_dense(), abs=1e-3 * np.abs(t.to_dense()).max()
        )

    def test_fit_monotone_nonincreasing_error(self):
        t, _ = _rank_r_tensor((6, 6, 6), rank=2, seed=202)
        model = cp_als(t, rank=2, iterations=30, seed=2)
        # ALS fit is (numerically) non-decreasing.
        fits = np.asarray(model.fits)
        assert (np.diff(fits) > -1e-8).all()

    def test_higher_rank_fits_better(self):
        t, _ = _rank_r_tensor((7, 8, 6), rank=4, seed=203)
        f1 = cp_als(t, rank=1, iterations=60, seed=3).fit
        f4 = cp_als(t, rank=4, iterations=60, seed=3).fit
        assert f4 > f1

    def test_order_4(self):
        t, _ = _rank_r_tensor((5, 4, 6, 3), rank=2, seed=204)
        model = cp_als(t, rank=2, iterations=150, seed=4)
        assert model.fit > 0.99

    def test_zero_tensor(self):
        model = cp_als(SparseTensor.empty((4, 4, 4)), rank=2)
        assert model.fit == 1.0

    def test_validation(self):
        t, _ = _rank_r_tensor((4, 4, 4), rank=1, seed=205)
        with pytest.raises(ShapeError):
            cp_als(t, rank=0)
        with pytest.raises(ShapeError):
            cp_als(t, rank=2, iterations=0)

    def test_model_properties(self):
        t, _ = _rank_r_tensor((5, 5, 5), rank=2, seed=206)
        model = cp_als(t, rank=2, iterations=20, seed=5)
        assert model.rank == 2
        assert len(model.factors) == 3
        assert all(
            f.shape == (5, 2) for f in model.factors
        )
