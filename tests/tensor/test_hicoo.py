"""Tests for the HiCOO format."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import SparseTensor, random_tensor
from repro.tensor.hicoo import HiCOOTensor
from repro.tensor.random import random_tensor_fibered


@pytest.fixture
def tensor():
    return random_tensor((40, 50, 60), 500, seed=141)


class TestRoundTrip:
    def test_round_trip(self, tensor):
        h = HiCOOTensor.from_coo(tensor)
        assert h.to_coo().allclose(tensor)
        assert h.nnz == tensor.nnz

    def test_empty(self):
        h = HiCOOTensor.from_coo(SparseTensor.empty((8, 8)))
        assert h.nnz == 0
        assert h.num_blocks == 0
        assert h.to_coo().nnz == 0

    def test_order_4(self):
        t = random_tensor((16, 16, 16, 16), 300, seed=142)
        assert HiCOOTensor.from_coo(t).to_coo().allclose(t)

    def test_various_block_bits(self, tensor):
        for bits in (1, 2, 4, 7):
            h = HiCOOTensor.from_coo(tensor, block_bits=bits)
            assert h.to_coo().allclose(tensor), bits

    def test_bad_block_bits(self, tensor):
        with pytest.raises(ShapeError):
            HiCOOTensor.from_coo(tensor, block_bits=0)
        with pytest.raises(ShapeError):
            HiCOOTensor.from_coo(tensor, block_bits=8)


class TestCompression:
    def test_offsets_fit_uint8(self, tensor):
        h = HiCOOTensor.from_coo(tensor, block_bits=3)
        assert h.offsets.dtype == np.uint8
        assert h.offsets.max() < 8

    def test_clustered_tensor_compresses(self):
        # Non-zeros clustered into few blocks -> fewer block coords than
        # nnz -> HiCOO beats COO index storage.
        t = random_tensor_fibered((64, 64, 64), 2000, 2, 30, seed=143)
        h = HiCOOTensor.from_coo(t)
        coo_bytes = t.nnz * (8 * t.order + 8)
        assert h.nbytes < coo_bytes
        assert h.compression_ratio() > 1.0

    def test_scattered_tensor_does_not_compress(self):
        # One non-zero per block: HiCOO pays block coords AND offsets.
        t = random_tensor((1024, 1024), 200, seed=144)
        h = HiCOOTensor.from_coo(t)
        assert h.num_blocks == pytest.approx(t.nnz, abs=3)

    def test_block_count_bounds(self, tensor):
        h = HiCOOTensor.from_coo(tensor)
        assert 1 <= h.num_blocks <= tensor.nnz


class TestIteration:
    def test_blocks_cover_all_nonzeros(self, tensor):
        h = HiCOOTensor.from_coo(tensor)
        total = 0
        for coords, offsets, values in h.blocks():
            assert offsets.shape[0] == values.shape[0]
            total += values.shape[0]
            # Reconstructed indices stay within the block's footprint.
            base = coords << h.block_bits
            idx = base + offsets.astype(np.int64)
            assert (idx >> h.block_bits == coords).all()
        assert total == tensor.nnz
