"""Tests for the random tensor generators."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.tensor import (
    random_dense_like,
    random_tensor,
    random_tensor_fibered,
)


class TestRandomTensor:
    def test_respects_nnz(self):
        t = random_tensor((10, 10, 10), 100, seed=0)
        assert t.nnz == 100

    def test_distinct_coordinates(self):
        t = random_tensor((6, 6), 30, seed=1)
        assert t.coalesce().nnz == t.nnz

    def test_deterministic(self):
        a = random_tensor((8, 8, 8), 50, seed=2)
        b = random_tensor((8, 8, 8), 50, seed=2)
        assert a.allclose(b)

    def test_different_seeds_differ(self):
        a = random_tensor((8, 8, 8), 50, seed=2)
        b = random_tensor((8, 8, 8), 50, seed=3)
        assert not a.allclose(b)

    def test_nnz_capped_at_capacity(self):
        t = random_tensor((3, 3), 100, seed=0)
        assert t.nnz == 9

    def test_zero_nnz(self):
        assert random_tensor((4, 4), 0).nnz == 0

    def test_negative_nnz_rejected(self):
        with pytest.raises(ShapeError):
            random_tensor((4, 4), -1)

    def test_no_zero_values(self):
        t = random_tensor((10, 10), 50, seed=4)
        assert (t.values != 0).all()

    def test_with_duplicates_mode(self):
        t = random_tensor((4, 4), 100, distinct=False, seed=5)
        assert t.nnz == 100  # stored rows, duplicates allowed


class TestFibered:
    def test_fiber_count(self):
        t = random_tensor_fibered((20, 20, 30), 2000, 2, 50, seed=6)
        lead = t.indices[:, :2]
        distinct = {(int(a), int(b)) for a, b in lead}
        assert len(distinct) == 50

    def test_skew_concentrates(self):
        flat = random_tensor_fibered((30, 40), 3000, 1, 25, seed=7, skew=0.0)
        skewed = random_tensor_fibered(
            (30, 40), 3000, 1, 25, seed=7, skew=2.0
        )

        def top_share(t):
            vals, counts = np.unique(
                t.indices[:, 0], return_counts=True
            )
            return counts.max() / t.nnz

        assert top_share(skewed) > top_share(flat)

    def test_every_fiber_nonempty(self):
        t = random_tensor_fibered((50, 10, 10), 200, 1, 40, seed=8)
        assert len(set(int(i) for i in t.indices[:, 0])) == 40

    def test_bad_lead_modes(self):
        with pytest.raises(ShapeError):
            random_tensor_fibered((4, 4), 10, 0, 2)
        with pytest.raises(ShapeError):
            random_tensor_fibered((4, 4), 10, 2, 2)

    def test_coalesced(self):
        t = random_tensor_fibered((5, 5, 5), 300, 1, 3, seed=9)
        assert t.coalesce().nnz == t.nnz


class TestDensityDriven:
    def test_density_target(self):
        t = random_dense_like((20, 20), 0.25, seed=10)
        assert t.nnz == 100

    def test_bad_density(self):
        with pytest.raises(ShapeError):
            random_dense_like((4, 4), 1.5)
