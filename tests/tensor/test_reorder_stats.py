"""Tests for index reordering and sparsity statistics."""

import numpy as np
import pytest

from repro.core import contract
from repro.errors import ShapeError
from repro.tensor import SparseTensor, random_tensor, random_tensor_fibered
from repro.tensor.hicoo import HiCOOTensor
from repro.tensor.reorder import (
    apply_reordering,
    frequency_order,
    invert_reordering,
    lexi_order,
)
from repro.tensor.stats import fiber_stats, render, tensor_stats


@pytest.fixture
def skewed():
    return random_tensor_fibered((40, 30, 30), 1500, 1, 12, seed=291,
                                 skew=1.5)


class TestReordering:
    def test_frequency_order_is_permutation(self, skewed):
        perm = frequency_order(skewed, 0)
        assert sorted(perm.tolist()) == list(range(40))

    def test_heaviest_slice_goes_first(self, skewed):
        perm = frequency_order(skewed, 0)
        counts = np.bincount(skewed.indices[:, 0], minlength=40)
        heaviest = int(np.argmax(counts))
        assert perm[heaviest] == 0

    def test_apply_invert_round_trip(self, skewed):
        perm = frequency_order(skewed, 0)
        fwd = apply_reordering(skewed, 0, perm)
        back = apply_reordering(fwd, 0, invert_reordering(perm))
        assert back.allclose(skewed)

    def test_reordering_preserves_values(self, skewed):
        perm = lexi_order(skewed, 0)
        re = apply_reordering(skewed, 0, perm)
        assert re.nnz == skewed.nnz
        assert np.sort(re.values) == pytest.approx(
            np.sort(skewed.values)
        )

    def test_reordering_improves_clustering(self):
        # Scatter heavy slices across the index space; frequency order
        # pulls them together, so HiCOO needs fewer blocks.
        rng = np.random.default_rng(292)
        rows = []
        for s, count in [(3, 300), (17, 280), (31, 260), (58, 240)]:
            for _ in range(count):
                rows.append(
                    (s, rng.integers(0, 20), rng.integers(0, 20))
                )
        t = SparseTensor(
            rows, rng.standard_normal(len(rows)), (64, 20, 20)
        ).coalesce()
        before = HiCOOTensor.from_coo(t).num_blocks
        re = apply_reordering(t, 0, frequency_order(t, 0))
        after = HiCOOTensor.from_coo(re).num_blocks
        assert after <= before

    def test_contraction_invariant_under_relabeling(self, skewed):
        # Relabeling a FREE mode of X permutes the output's mode, so
        # contracting relabeled X equals relabeling the output.
        y = random_tensor_fibered((30, 30, 10), 600, 2, 150, seed=293)
        perm = frequency_order(skewed, 0)
        base = contract(skewed, y, (1, 2), (0, 1), method="vectorized")
        relabeled = contract(
            apply_reordering(skewed, 0, perm), y, (1, 2), (0, 1),
            method="vectorized",
        )
        expected = apply_reordering(base.tensor, 0, perm).sort()
        assert relabeled.tensor.allclose(expected)

    def test_validation(self, skewed):
        with pytest.raises(ShapeError):
            frequency_order(skewed, 9)
        with pytest.raises(ShapeError):
            apply_reordering(skewed, 0, [0, 1])
        with pytest.raises(ShapeError):
            apply_reordering(skewed, 0, [0] * 40)
        with pytest.raises(ShapeError):
            lexi_order(skewed, 0, bits=0)


class TestStats:
    def test_table3_quantities(self, skewed):
        st = tensor_stats(skewed)
        assert st.order == 3
        assert st.nnz == skewed.nnz
        assert st.used_indices[0] == 12  # the generated fiber count
        assert st.prefixes[1].num_fibers == 12

    def test_skew_measured(self, skewed):
        flat = random_tensor((40, 30, 30), 1500, seed=294)
        st_skewed = fiber_stats(skewed, (0,))
        st_flat = fiber_stats(flat, (0,))
        assert st_skewed.top1pct_share > st_flat.top1pct_share

    def test_mean_size(self, skewed):
        fs = fiber_stats(skewed, (0,))
        assert fs.mean_size == pytest.approx(skewed.nnz / 12)
        assert fs.min_size <= fs.mean_size <= fs.max_size

    def test_empty_tensor(self):
        st = tensor_stats(SparseTensor.empty((4, 4)))
        assert st.nnz == 0
        assert st.prefixes[1].num_fibers == 0

    def test_render(self, skewed):
        out = render(tensor_stats(skewed))
        assert "order 3" in out
        assert "prefix-1 fibers: 12" in out

    def test_validation(self, skewed):
        with pytest.raises(ShapeError):
            fiber_stats(skewed, ())
        with pytest.raises(ShapeError):
            fiber_stats(skewed, (0, 1, 2))
        with pytest.raises(ShapeError):
            fiber_stats(skewed, (7,))
