"""Tests for the LN (large-number) index representation."""

import numpy as np
import pytest

from repro.errors import LinearizationOverflowError, ShapeError
from repro.tensor.linearize import (
    delinearize,
    delinearize_tuple,
    linearize,
    linearize_tuple,
    ln_capacity,
    ln_strides,
)


class TestStrides:
    def test_row_major(self):
        assert ln_strides((2, 3, 4)).tolist() == [12, 4, 1]

    def test_single_mode(self):
        assert ln_strides((7,)).tolist() == [1]

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            ln_strides(())

    def test_zero_extent_rejected(self):
        with pytest.raises(ShapeError):
            ln_strides((3, 0))

    def test_negative_extent_rejected(self):
        with pytest.raises(ShapeError):
            ln_strides((3, -1))

    def test_overflow_detected(self):
        with pytest.raises(LinearizationOverflowError):
            ln_strides((2**32, 2**32))

    def test_capacity(self):
        assert ln_capacity((2, 3, 4)) == 24


class TestLinearize:
    def test_paper_example(self):
        # The paper: tuple (0, 3) with J4 -> 0 * J4 + 3 = 3.
        assert linearize_tuple((0, 3), (7, 4)) == 3

    def test_round_trip(self):
        dims = (5, 7, 3, 11)
        rng = np.random.default_rng(0)
        idx = np.column_stack(
            [rng.integers(0, d, size=100) for d in dims]
        )
        keys = linearize(idx, dims)
        assert np.array_equal(delinearize(keys, dims), idx)

    def test_unique_keys_for_unique_tuples(self):
        dims = (4, 5, 6)
        all_idx = np.argwhere(np.ones(dims, dtype=bool))
        keys = linearize(all_idx, dims)
        assert np.unique(keys).shape[0] == keys.shape[0]
        assert keys.min() == 0
        assert keys.max() == ln_capacity(dims) - 1

    def test_ordering_is_lexicographic(self):
        dims = (3, 4)
        a = linearize_tuple((1, 2), dims)
        b = linearize_tuple((1, 3), dims)
        c = linearize_tuple((2, 0), dims)
        assert a < b < c

    def test_wrong_width_rejected(self):
        with pytest.raises(ShapeError):
            linearize(np.zeros((3, 2), dtype=np.int64), (4, 5, 6))

    def test_one_d_input_rejected(self):
        with pytest.raises(ShapeError):
            linearize(np.zeros(3, dtype=np.int64), (4,))

    def test_scalar_round_trip(self):
        dims = (9, 9, 9)
        key = linearize_tuple((4, 5, 6), dims)
        assert delinearize_tuple(key, dims) == (4, 5, 6)

    def test_delinearize_requires_1d(self):
        with pytest.raises(ShapeError):
            delinearize(np.zeros((2, 2), dtype=np.int64), (4, 5))

    def test_empty_batch(self):
        keys = linearize(np.empty((0, 2), dtype=np.int64), (3, 4))
        assert keys.shape == (0,)
        assert delinearize(keys, (3, 4)).shape == (0, 2)
