"""Tests for the Figure-4 scaling-law analysis."""

from repro.experiments import extrapolate


def test_speedup_grows_with_scale():
    rows = extrapolate.run(
        cases=(("uracil", 3),), scales=(0.08, 0.25), seed=0
    )
    assert len(rows) == 1
    row = rows[0]
    assert row.speedups[1] > row.speedups[0]
    assert row.alpha > 0
    # Extrapolated trend exceeds the biggest measured point.
    assert row.trend_at_paper_scale > row.speedups[-1]


def test_nnz_recorded_per_scale():
    rows = extrapolate.run(
        cases=(("nips", 2),), scales=(0.05, 0.15), seed=0
    )
    assert rows[0].nnz_y[0] < rows[0].nnz_y[1]
    assert rows[0].paper_nnz_y > rows[0].nnz_y[-1]
