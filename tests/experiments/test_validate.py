"""Tests for the validation sweep."""

from repro.experiments import validate


def test_validation_sweep_all_agree():
    rows = validate.run(scale=0.03)
    assert len(rows) > 10  # every dataset x every mode count
    assert all(r.agree for r in rows), [
        (r.label, r.detail) for r in rows if not r.agree
    ]


def test_validation_cli_exit_code(capsys):
    assert validate.main(["--scale", "0.03"]) == 0
    out = capsys.readouterr().out
    assert "cases agree" in out
