"""Smoke tests for every experiment module at tiny scales.

Each figure/table module must run end-to-end and reproduce its paper
observation qualitatively.
"""

import pytest

from repro.core.profile import DataObject
from repro.core.stages import COMPUTATION_STAGES, Stage


SCALE = 0.08


class TestFig2Breakdown:
    def test_runs_and_computation_dominates(self):
        from repro.experiments import breakdown

        rows = breakdown.run(
            engine="spa", datasets=("chicago",), modes=(1, 2),
            scale=SCALE,
        )
        assert len(rows) == 2
        for row in rows:
            compute = sum(
                row.fractions.get(s, 0.0) for s in COMPUTATION_STAGES
            )
            assert compute > 0.5

    def test_cli(self, capsys):
        from repro.experiments import breakdown

        out = breakdown.main(["--scale", str(SCALE)])
        assert "Figure 2" in out
        assert "Chicago 1-Mode" in out


class TestFig3Characterization:
    def test_observations(self):
        from repro.experiments import characterization

        res = characterization.run(scale=SCALE)
        # Observation 3: X/Y placement nearly free.
        assert res.slowdown(DataObject.Y) < 0.10
        # Hash structures hurt more than the streamed inputs.
        assert res.slowdown(DataObject.HTY) > res.slowdown(DataObject.Y)
        # The streamed inputs rank at the bottom of the sensitivity list.
        prio = res.priority()
        assert DataObject.Y not in prio[:3]

    def test_table2_report(self):
        from repro.experiments import characterization

        out = characterization.table2_report(scale=SCALE)
        assert "Table 2" in out
        assert "index_search" in out


class TestFig4Speedup:
    def test_sparta_fastest(self):
        from repro.experiments import speedup

        rows = speedup.run(
            datasets=("uracil",), modes=(2,), scale=0.15
        )
        assert len(rows) == 1
        assert rows[0].sparta_speedup > 1.5
        assert rows[0].coo_hta_speedup > 0.4


class TestFig5ITensor:
    def test_work_speedups(self):
        from repro.experiments import itensor_cmp

        rows = itensor_cmp.run(scale=0.25)
        assert len(rows) == 10
        assert all(r.results_match for r in rows)
        mean = sum(r.work_speedup for r in rows) / len(rows)
        assert 3.0 < mean < 20.0  # paper: 7.1x


class TestFig6Scalability:
    def test_predictions(self):
        from repro.experiments import scalability

        rows = scalability.run(
            cases=(("nips", 1),), scale=SCALE
        )
        assert rows[0].parallel_matches
        s = rows[0].speedups
        assert s[1] == pytest.approx(1.0)
        assert s[12] > s[4] > s[1]

    def test_stage_report(self):
        from repro.experiments import scalability

        out = scalability.stage_speedup_report()
        assert "10.9x" in out  # accumulation at 12T


class TestFig7HM:
    def test_policy_ranking(self):
        from repro.experiments import hm

        row = hm.run_case("nell2", 2, scale=SCALE)
        assert row.speedup("dram_only") >= row.speedup("sparta")
        assert row.speedup("sparta") > 1.0
        assert row.speedup("sparta") > row.speedup("ial")

    def test_case_list_has_15(self):
        from repro.experiments.hm import FIGURE7_CASES

        assert len(FIGURE7_CASES) == 15

    def test_thread_sweep_shrinks_dram_set(self):
        from repro.experiments.hm import thread_sweep

        rows = thread_sweep(scale=SCALE, threads=(1, 8))
        assert rows[0].threads == 1 and rows[1].threads == 8
        # Per-thread objects cost 8x at 8 threads, so the DRAM-resident
        # per-thread set can only shrink (or swap for global objects).
        per_thread = {"HtA", "Z_local"}
        resident_1 = per_thread & set(rows[0].dram_objects)
        resident_8 = per_thread & set(rows[1].dram_objects)
        assert len(resident_8) <= len(resident_1)


class TestFig8Bandwidth:
    def test_observations(self):
        from repro.experiments import bandwidth

        res = bandwidth.run(scale=SCALE)
        assert set(res.timelines) == {
            "sparta", "ial", "memory_mode", "optane_only"
        }
        dram_opt, pmm_opt = res.mean_bandwidth("optane_only")
        assert dram_opt == 0.0
        # IAL PMM bandwidth exceeds Sparta's (migrations).
        _, pmm_sparta = res.mean_bandwidth("sparta")
        _, pmm_ial = res.mean_bandwidth("ial")
        assert pmm_ial > pmm_sparta


class TestFig9Memory:
    def test_estimates_bound(self):
        from repro.experiments import memory_usage

        row = memory_usage.run_case("uber", 2, scale=SCALE)
        assert row.peak_bytes > 0
        assert row.hta_estimate >= row.hta_measured


class TestTables:
    def test_table3(self):
        from repro.experiments import report

        out = report.table3(scale=SCALE)
        assert "nell2" in out and "uracil" in out

    def test_table4(self):
        from repro.experiments import report

        out = report.table4(scale=0.25)
        assert "SpTC10" in out
