"""Tests for HtY, the hash-table-represented tensor."""

import numpy as np
import pytest

from repro.errors import ContractionError
from repro.hashtable import HashTensor
from repro.tensor import (
    SparseTensor,
    linearize,
    random_tensor,
    random_tensor_fibered,
)


@pytest.fixture
def tensor():
    return random_tensor_fibered((10, 12, 8, 9), 400, 2, 60, seed=13)


@pytest.fixture
def hty(tensor):
    return HashTensor.from_coo(tensor, (0, 1))


class TestBuild:
    def test_group_count(self, tensor, hty):
        distinct = {
            (int(a), int(b)) for a, b in tensor.indices[:, :2]
        }
        assert hty.num_groups == len(distinct)

    def test_nnz_preserved(self, tensor, hty):
        assert hty.nnz == tensor.nnz

    def test_group_sizes(self, tensor, hty):
        assert hty.max_group_size >= 1
        assert hty.avg_group_size == pytest.approx(
            tensor.nnz / hty.num_groups
        )

    def test_empty_tensor(self):
        hty = HashTensor.from_coo(SparseTensor.empty((4, 5, 6)), (0,))
        assert hty.num_groups == 0
        assert hty.lookup(0) is None
        assert hty.max_group_size == 0

    def test_contract_modes_anywhere(self):
        # HtY keys can come from any mode positions, not just leading.
        t = random_tensor((6, 7, 8), 100, seed=14)
        hty = HashTensor.from_coo(t, (2,))
        row = t.indices[0]
        hit = hty.lookup(int(row[2]))
        assert hit is not None

    def test_no_contract_modes_rejected(self):
        t = random_tensor((4, 4), 8, seed=15)
        with pytest.raises(ContractionError):
            HashTensor.from_coo(t, ())

    def test_all_modes_contracted_rejected(self):
        t = random_tensor((4, 4), 8, seed=16)
        with pytest.raises(ContractionError):
            HashTensor.from_coo(t, (0, 1))

    def test_nbytes(self, hty):
        assert hty.nbytes > 0


class TestLookup:
    def test_every_nonzero_found(self, tensor, hty):
        keys = linearize(tensor.indices[:, :2], tensor.shape[:2])
        fy_expected = linearize(tensor.indices[:, 2:], tensor.shape[2:])
        for i in range(0, tensor.nnz, 17):
            hit = hty.lookup(int(keys[i]))
            assert hit is not None
            free_ln, vals = hit
            pos = np.flatnonzero(free_ln == fy_expected[i])
            assert pos.size >= 1
            assert float(tensor.values[i]) in [
                pytest.approx(float(v)) for v in vals[pos]
            ]

    def test_group_contents_complete(self, tensor, hty):
        keys = linearize(tensor.indices[:, :2], tensor.shape[:2])
        key = int(keys[0])
        free_ln, vals = hty.lookup(key)
        expected = int(np.sum(keys == key))
        assert free_ln.shape[0] == expected == vals.shape[0]

    def test_absent_key(self, hty, tensor):
        capacity = tensor.shape[0] * tensor.shape[1]
        present = set(
            int(k)
            for k in linearize(tensor.indices[:, :2], tensor.shape[:2])
        )
        missing = next(k for k in range(capacity) if k not in present)
        assert hty.lookup(missing) is None

    def test_lookup_many_matches_scalar(self, tensor, hty):
        keys = linearize(tensor.indices[:, :2], tensor.shape[:2])
        probe = np.concatenate((keys[:50], np.array([10**6])))
        gids = hty.lookup_many(probe)
        assert (gids[:50] >= 0).all()
        assert gids[-1] == -1
        for i in range(50):
            free_ln, _ = hty.group(int(gids[i]))
            scalar_free, _ = hty.lookup(int(probe[i]))
            assert np.array_equal(free_ln, scalar_free)

    def test_groups_are_contiguous_views(self, hty):
        # Spatial locality: groups are slices of one array.
        free_a, vals_a = hty.group(0)
        assert free_a.base is hty.free_ln or free_a.size == 0
        assert vals_a.base is hty.values or vals_a.size == 0

    def test_custom_bucket_count(self, tensor):
        hty = HashTensor.from_coo(tensor, (0, 1), num_buckets=4)
        keys = linearize(tensor.indices[:, :2], tensor.shape[:2])
        assert (hty.lookup_many(keys) >= 0).all()
