"""Tests for the separate-chaining hash table."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.hashtable import ChainingHashTable, default_num_buckets


class TestScalarOps:
    def test_insert_lookup(self):
        t = ChainingHashTable(16)
        slot, created = t.insert(42)
        assert created and slot == 0
        assert t.lookup(42) == 0
        assert 42 in t

    def test_missing_key(self):
        t = ChainingHashTable(16)
        assert t.lookup(7) == -1
        assert 7 not in t

    def test_duplicate_insert_returns_same_slot(self):
        t = ChainingHashTable(16)
        s1, c1 = t.insert(5)
        s2, c2 = t.insert(5)
        assert s1 == s2
        assert c1 and not c2
        assert len(t) == 1

    def test_slots_are_insertion_ordered(self):
        t = ChainingHashTable(8)
        for i, key in enumerate([100, 7, 55, 3]):
            slot, _ = t.insert(key)
            assert slot == i

    def test_collisions_resolved(self):
        # One bucket forces every key onto one chain.
        t = ChainingHashTable(1)
        for key in range(50):
            t.insert(key)
        assert len(t) == 50
        for key in range(50):
            assert t.lookup(key) >= 0

    def test_growth(self):
        t = ChainingHashTable(4, capacity_hint=4)
        for key in range(100):
            t.insert(key * 13)
        assert len(t) == 100

    def test_bad_bucket_count(self):
        with pytest.raises(ShapeError):
            ChainingHashTable(0)

    def test_negative_keys_supported(self):
        t = ChainingHashTable(16)
        t.insert(-5)
        assert t.lookup(-5) >= 0


class TestBatchOps:
    def test_insert_many_matches_scalar(self):
        keys = np.array([5, 9, 5, 1, 9, 9, 7], dtype=np.int64)
        batch = ChainingHashTable(8)
        slots_batch = batch.insert_many(keys)
        scalar = ChainingHashTable(8)
        slots_scalar = np.array([scalar.insert(int(k))[0] for k in keys])
        # Same keys share slots in both; distinct keys have distinct slots.
        for i in range(len(keys)):
            for j in range(len(keys)):
                assert (slots_batch[i] == slots_batch[j]) == (
                    keys[i] == keys[j]
                )
                assert (slots_scalar[i] == slots_scalar[j]) == (
                    keys[i] == keys[j]
                )
        assert len(batch) == len(scalar) == len(set(keys.tolist()))

    def test_insert_many_extends_existing(self):
        t = ChainingHashTable(8)
        t.insert(10)
        slots = t.insert_many(np.array([10, 20], dtype=np.int64))
        assert slots[0] == 0
        assert len(t) == 2

    def test_insert_many_same_bucket_chains(self):
        t = ChainingHashTable(1)  # every key collides
        keys = np.arange(30, dtype=np.int64)
        t.insert_many(keys)
        found = t.lookup_many(keys)
        assert (found >= 0).all()
        assert np.array_equal(t.keys[found], keys)

    def test_lookup_many_hits_and_misses(self):
        t = ChainingHashTable(16)
        t.insert_many(np.array([2, 4, 6], dtype=np.int64))
        result = t.lookup_many(np.array([4, 5, 2, 99], dtype=np.int64))
        assert result[0] >= 0 and result[2] >= 0
        assert result[1] == -1 and result[3] == -1

    def test_lookup_many_empty(self):
        t = ChainingHashTable(16)
        assert t.lookup_many(np.empty(0, dtype=np.int64)).shape == (0,)

    def test_lookup_many_on_empty_table(self):
        t = ChainingHashTable(16)
        out = t.lookup_many(np.array([1, 2], dtype=np.int64))
        assert (out == -1).all()

    def test_insert_many_empty(self):
        t = ChainingHashTable(16)
        assert t.insert_many(np.empty(0, dtype=np.int64)).shape == (0,)

    def test_2d_keys_rejected(self):
        t = ChainingHashTable(16)
        with pytest.raises(ShapeError):
            t.lookup_many(np.zeros((2, 2), dtype=np.int64))

    def test_large_random_consistency(self):
        rng = np.random.default_rng(0)
        keys = rng.choice(1_000_000, size=5000, replace=False)
        t = ChainingHashTable(default_num_buckets(5000))
        slots = t.insert_many(keys)
        assert np.array_equal(t.keys[slots], keys)
        probes = rng.choice(1_000_000, size=2000)
        result = t.lookup_many(probes)
        known = set(int(k) for k in keys)
        for p, r in zip(probes, result):
            assert (int(p) in known) == (r >= 0)


class TestDiagnostics:
    def test_probes_counted(self):
        t = ChainingHashTable(1)
        t.insert(1)
        t.insert(2)
        before = t.probes
        t.lookup(2)  # head of chain: 1 comparison
        t.lookup(1)  # second in chain: 2 comparisons
        assert t.probes - before == 3

    def test_chain_lengths_sum_to_size(self):
        t = ChainingHashTable(16)
        t.insert_many(np.arange(100, dtype=np.int64))
        lengths = t.chain_lengths()
        assert lengths.sum() == 100

    def test_load_factor(self):
        t = ChainingHashTable(10)
        t.insert_many(np.arange(5, dtype=np.int64))
        assert t.load_factor == pytest.approx(0.5)

    def test_default_num_buckets_power_of_two(self):
        for n in (0, 1, 15, 16, 17, 1000):
            b = default_num_buckets(n)
            assert b >= max(n, 16)
            assert b & (b - 1) == 0
