"""Partial-build + merge must be byte-identical to the serial HtY build."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashtable.chaining import ChainingHashTable, _hash_keys
from repro.hashtable.tensor_table import (
    HashTensor,
    PartialGroups,
    build_partial_groups,
    split_contract_modes,
)
from repro.tensor import random_tensor_fibered
from repro.errors import ContractionError


def make_y(seed: int = 7, nnz: int = 900):
    return random_tensor_fibered((14, 11, 9), nnz, 2, 40, seed=seed)


def span_partials(y, cy, spans):
    cmodes, fmodes, cdims, fdims = split_contract_modes(
        y.order, y.shape, cy
    )
    parts = [
        build_partial_groups(
            y.indices, y.values, cmodes, fmodes, cdims, fdims, lo, hi
        )
        for lo, hi in spans
    ]
    return parts, cdims, fdims


def assert_hty_byte_equal(a: HashTensor, b: HashTensor) -> None:
    np.testing.assert_array_equal(a.group_ptr, b.group_ptr)
    np.testing.assert_array_equal(a.free_ln, b.free_ln)
    np.testing.assert_array_equal(a.values, b.values)
    assert a.table.num_buckets == b.table.num_buckets
    np.testing.assert_array_equal(a.table.heads, b.table.heads)
    np.testing.assert_array_equal(
        a.table.keys[: a.table.size], b.table.keys[: b.table.size]
    )
    np.testing.assert_array_equal(
        a.table.nxt[: a.table.size], b.table.nxt[: b.table.size]
    )
    assert a.free_dims == b.free_dims
    assert a.contract_dims == b.contract_dims


class TestChainingMergePartials:
    def test_union_of_sorted_runs(self):
        rng = np.random.default_rng(0)
        keys = rng.choice(10_000, size=600, replace=False).astype(np.int64)
        chunks = [np.sort(c) for c in np.array_split(keys, 4)]
        merged_table, merged_keys = ChainingHashTable.merge_partials(chunks)
        ref = ChainingHashTable(
            merged_table.num_buckets, capacity_hint=keys.shape[0]
        )
        ref.insert_many(np.sort(keys))
        np.testing.assert_array_equal(merged_keys, np.sort(keys))
        np.testing.assert_array_equal(merged_table.heads, ref.heads)
        np.testing.assert_array_equal(
            merged_table.keys[: merged_table.size], ref.keys[: ref.size]
        )
        np.testing.assert_array_equal(
            merged_table.nxt[: merged_table.size], ref.nxt[: ref.size]
        )

    def test_duplicates_across_partials_dedup(self):
        a = np.array([1, 5, 9], dtype=np.int64)
        b = np.array([5, 9, 12], dtype=np.int64)
        table, merged = ChainingHashTable.merge_partials([a, b])
        np.testing.assert_array_equal(merged, [1, 5, 9, 12])
        assert len(table) == 4

    def test_empty_inputs(self):
        table, merged = ChainingHashTable.merge_partials([])
        assert len(table) == 0 and merged.size == 0
        table, merged = ChainingHashTable.merge_partials(
            [np.empty(0, dtype=np.int64)]
        )
        assert len(table) == 0 and merged.size == 0

    def test_build_adds_zero_probes(self):
        # Serial from_coo measures hash_probes as a delta *after* the
        # build; the merged build must also leave probes at zero.
        chunks = [np.array([2, 4], dtype=np.int64),
                  np.array([1, 3], dtype=np.int64)]
        table, _ = ChainingHashTable.merge_partials(chunks)
        assert table.probes == 0


class TestHashTensorMergePartials:
    @pytest.mark.parametrize("num_spans", [1, 2, 3, 5, 8])
    def test_byte_identical_to_from_coo(self, num_spans):
        y = make_y()
        cy = (0, 1)
        ref = HashTensor.from_coo(y, cy)
        n = y.nnz
        bounds = [(i * n) // num_spans for i in range(num_spans + 1)]
        spans = list(zip(bounds[:-1], bounds[1:]))
        parts, cdims, fdims = span_partials(y, cy, spans)
        merged = HashTensor.merge_partials(parts, fdims, cdims)
        assert_hty_byte_equal(merged, ref)

    def test_uneven_and_empty_spans(self):
        y = make_y(seed=3)
        cy = (1, 2)
        ref = HashTensor.from_coo(y, cy)
        n = y.nnz
        spans = [(0, 1), (1, 1), (1, n - 2), (n - 2, n)]
        parts, cdims, fdims = span_partials(y, cy, spans)
        merged = HashTensor.merge_partials(parts, fdims, cdims)
        assert_hty_byte_equal(merged, ref)

    def test_no_partials_matches_empty_from_coo(self):
        from repro.tensor import SparseTensor

        y = SparseTensor.empty((6, 5))
        ref = HashTensor.from_coo(y, (0,))
        merged = HashTensor.merge_partials([], (5,), (6,))
        assert_hty_byte_equal(merged, ref)
        assert merged.nnz == 0 and merged.num_groups == 0

    def test_identical_probe_streams(self):
        # Identical structure must mean identical lookup cost, probe for
        # probe, under the same query stream.
        y = make_y(seed=11)
        cy = (0, 1)
        ref = HashTensor.from_coo(y, cy)
        parts, cdims, fdims = span_partials(
            y, cy, [(0, y.nnz // 3), (y.nnz // 3, y.nnz)]
        )
        merged = HashTensor.merge_partials(parts, fdims, cdims)
        rng = np.random.default_rng(5)
        queries = rng.integers(0, 14 * 11, size=500).astype(np.int64)
        p0_ref, p0_m = ref.table.probes, merged.table.probes
        slots_ref = ref.lookup_many(queries)
        slots_m = merged.lookup_many(queries)
        np.testing.assert_array_equal(slots_ref, slots_m)
        assert (
            ref.table.probes - p0_ref == merged.table.probes - p0_m
        )

    def test_num_buckets_override(self):
        y = make_y(seed=2, nnz=200)
        ref = HashTensor.from_coo(y, (0, 1), num_buckets=8)
        parts, cdims, fdims = span_partials(y, (0, 1), [(0, 100), (100, 200)])
        merged = HashTensor.merge_partials(
            parts, fdims, cdims, num_buckets=8
        )
        assert merged.table.num_buckets == 8
        assert_hty_byte_equal(merged, ref)


class TestBuildPartialGroups:
    def test_rejects_full_reduction(self):
        y = make_y()
        with pytest.raises(ContractionError):
            split_contract_modes(y.order, y.shape, (0, 1, 2))

    def test_group_rows_preserve_source_order(self):
        indices = np.array(
            [[0, 1], [1, 0], [0, 2], [1, 3], [0, 0]], dtype=np.int64
        )
        values = np.arange(5, dtype=np.float64)
        pg = build_partial_groups(
            indices, values, [0], [1], (2,), (4,), 0, 5
        )
        assert pg.num_groups == 2
        # key 0 rows in source order: rows 0, 2, 4 -> free 1, 2, 0
        np.testing.assert_array_equal(pg.free_ln[:3], [1, 2, 0])
        np.testing.assert_array_equal(pg.values[:3], [0.0, 2.0, 4.0])

    def test_empty_span(self):
        pg = build_partial_groups(
            np.empty((0, 2), dtype=np.int64),
            np.empty(0, dtype=np.float64),
            [0], [1], (2,), (4,),
        )
        assert pg.num_groups == 0 and pg.nnz == 0
        np.testing.assert_array_equal(pg.group_ptr, [0])

    def test_partials_are_picklable(self):
        import pickle

        y = make_y(seed=9, nnz=120)
        parts, _, _ = span_partials(y, (0, 1), [(0, 60), (60, 120)])
        clone = pickle.loads(pickle.dumps(parts[0]))
        assert isinstance(clone, PartialGroups)
        np.testing.assert_array_equal(clone.group_keys, parts[0].group_keys)


class TestProbeCounterConsistency:
    """Batch vs scalar probe accounting (satellite: bench assertion twin).

    ``lookup_many`` charges exactly what per-key ``lookup`` calls charge.
    ``insert_many`` matches scalar ``insert`` when the inserted keys land
    in distinct buckets (inside one bucket, scalar inserts walk the chain
    grown by their own batch — g(g-1)/2 extra comparisons — while the
    vectorized splice never re-walks its own batch).
    """

    def test_lookup_many_matches_scalar(self):
        rng = np.random.default_rng(1)
        keys = rng.choice(5000, size=300, replace=False).astype(np.int64)
        table = ChainingHashTable(64, capacity_hint=300)
        table.insert_many(np.sort(keys))
        queries = rng.integers(0, 6000, size=400).astype(np.int64)
        p0 = table.probes
        batch = table.lookup_many(queries)
        batch_probes = table.probes - p0
        p0 = table.probes
        scalar = np.array([table.lookup(int(k)) for k in queries])
        scalar_probes = table.probes - p0
        np.testing.assert_array_equal(batch, scalar)
        assert batch_probes == scalar_probes

    def test_insert_many_matches_scalar_distinct_buckets(self):
        rng = np.random.default_rng(2)
        num_buckets = 256
        cand = rng.choice(100_000, size=600, replace=False).astype(np.int64)
        buckets = _hash_keys(cand, num_buckets)
        _, first = np.unique(buckets, return_index=True)
        keys = np.sort(cand[first])  # ≤1 key per bucket
        batch = ChainingHashTable(num_buckets, capacity_hint=keys.size)
        batch.insert_many(keys)
        scalar = ChainingHashTable(num_buckets, capacity_hint=keys.size)
        for k in keys:
            scalar.insert(int(k))
        assert batch.probes == scalar.probes
        np.testing.assert_array_equal(batch.heads, scalar.heads)
        np.testing.assert_array_equal(
            batch.keys[: batch.size], scalar.keys[: scalar.size]
        )
