"""Tests for the linear-probing hash table."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.hashtable import ChainingHashTable, LinearProbingHashTable


class TestScalarOps:
    def test_insert_lookup(self):
        t = LinearProbingHashTable(16)
        slot, created = t.insert(42)
        assert created and slot == 0
        assert t.lookup(42) == 0
        assert 42 in t and 43 not in t

    def test_duplicate_insert(self):
        t = LinearProbingHashTable(16)
        s1, c1 = t.insert(7)
        s2, c2 = t.insert(7)
        assert s1 == s2 and c1 and not c2
        assert len(t) == 1

    def test_insertion_order_slots(self):
        t = LinearProbingHashTable(16)
        for i, key in enumerate([99, 5, 61, 2]):
            slot, _ = t.insert(key)
            assert slot == i

    def test_grows_past_load_limit(self):
        t = LinearProbingHashTable(16)
        for key in range(200):
            t.insert(key * 31)
        assert len(t) == 200
        assert t.load_factor <= t.MAX_LOAD
        for key in range(200):
            assert t.lookup(key * 31) >= 0

    def test_rehash_preserves_slots(self):
        t = LinearProbingHashTable(16)
        slots = {key: t.insert(key)[0] for key in range(50)}
        for key, slot in slots.items():
            assert t.lookup(key) == slot

    def test_bad_size(self):
        with pytest.raises(ShapeError):
            LinearProbingHashTable(0)


class TestBatchOps:
    def test_insert_many(self):
        t = LinearProbingHashTable(16)
        keys = np.array([3, 7, 3, 11, 7], dtype=np.int64)
        slots = t.insert_many(keys)
        assert slots[0] == slots[2]
        assert slots[1] == slots[4]
        assert len(t) == 3

    def test_lookup_many(self):
        t = LinearProbingHashTable(64)
        t.insert_many(np.arange(0, 100, 2, dtype=np.int64))
        probes = np.arange(10, dtype=np.int64)
        out = t.lookup_many(probes)
        for p, slot in zip(probes, out):
            assert (slot >= 0) == (p % 2 == 0)
            if slot >= 0:
                assert t.keys[slot] == p

    def test_lookup_many_empty_table(self):
        t = LinearProbingHashTable(16)
        assert (t.lookup_many(np.array([1, 2], dtype=np.int64)) == -1).all()

    def test_2d_rejected(self):
        t = LinearProbingHashTable(16)
        with pytest.raises(ShapeError):
            t.lookup_many(np.zeros((2, 2), dtype=np.int64))

    def test_agrees_with_chaining(self):
        rng = np.random.default_rng(7)
        keys = rng.choice(10**6, size=3000, replace=False).astype(np.int64)
        probes = rng.choice(10**6, size=2000).astype(np.int64)
        chain = ChainingHashTable(4096)
        lp = LinearProbingHashTable(8192)
        chain.insert_many(keys)
        lp.insert_many(keys)
        hits_chain = chain.lookup_many(probes) >= 0
        hits_lp = lp.lookup_many(probes) >= 0
        assert np.array_equal(hits_chain, hits_lp)


class TestProbes:
    def test_probe_count_grows_with_load(self):
        sparse = LinearProbingHashTable(4096)
        sparse.insert_many(np.arange(100, dtype=np.int64) * 17)
        sparse.probes = 0
        sparse.lookup_many(np.arange(100, dtype=np.int64) * 17)
        low = sparse.probes

        dense = LinearProbingHashTable(16)
        dense.insert_many(np.arange(100, dtype=np.int64) * 17)
        # load is capped by growth, but clusters still lengthen probes
        dense.probes = 0
        dense.lookup_many(np.arange(100, dtype=np.int64) * 17)
        assert dense.probes >= low
