"""Tests for HtA (hash accumulator) and SPA (linear-search accumulator).

Both must implement identical accumulate semantics; parametrized tests
run each behaviour against both implementations.
"""

import numpy as np
import pytest

from repro.hashtable import HashAccumulator, SparseAccumulator


@pytest.fixture(params=["hash", "spa"])
def acc(request):
    if request.param == "hash":
        return HashAccumulator()
    return SparseAccumulator()


class TestCommonSemantics:
    def test_add_new_key(self, acc):
        acc.add(3, 1.5)
        assert acc.get(3) == pytest.approx(1.5)
        assert len(acc) == 1

    def test_accumulate_existing(self, acc):
        acc.add(3, 1.5)
        acc.add(3, 2.0)
        assert acc.get(3) == pytest.approx(3.5)
        assert len(acc) == 1

    def test_missing_key(self, acc):
        assert acc.get(99) is None

    def test_export_insertion_order(self, acc):
        for key, val in [(9, 1.0), (2, 2.0), (7, 3.0)]:
            acc.add(key, val)
        keys, vals = acc.export()
        assert keys.tolist() == [9, 2, 7]
        assert vals.tolist() == [1.0, 2.0, 3.0]

    def test_add_many_equals_scalar_loop(self, acc):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 50, size=300)
        vals = rng.standard_normal(300)
        acc.add_many(keys, vals)
        expected = {}
        for k, v in zip(keys, vals):
            expected[int(k)] = expected.get(int(k), 0.0) + float(v)
        out_keys, out_vals = acc.export()
        assert len(out_keys) == len(expected)
        for k, v in zip(out_keys, out_vals):
            assert v == pytest.approx(expected[int(k)])

    def test_add_many_after_scalar(self, acc):
        acc.add(5, 1.0)
        acc.add_many(
            np.array([5, 6], dtype=np.int64), np.array([2.0, 3.0])
        )
        assert acc.get(5) == pytest.approx(3.0)
        assert acc.get(6) == pytest.approx(3.0)

    def test_add_many_empty(self, acc):
        acc.add_many(np.empty(0, dtype=np.int64), np.empty(0))
        assert len(acc) == 0

    def test_add_many_shape_mismatch(self, acc):
        with pytest.raises(ValueError):
            acc.add_many(np.array([1, 2]), np.array([1.0]))

    def test_growth(self, acc):
        for i in range(500):
            acc.add(i, float(i))
        assert len(acc) == 500
        assert acc.get(499) == pytest.approx(499.0)

    def test_repeated_batches(self, acc):
        keys = np.arange(20, dtype=np.int64)
        for _ in range(5):
            acc.add_many(keys, np.ones(20))
        _, vals = acc.export()
        assert vals == pytest.approx(np.full(20, 5.0))

    def test_negative_values(self, acc):
        acc.add(1, 5.0)
        acc.add(1, -5.0)
        assert acc.get(1) == pytest.approx(0.0)
        assert len(acc) == 1  # exact zeros stay stored

    def test_nbytes_grows(self, acc):
        before = acc.nbytes
        for i in range(1000):
            acc.add(i, 1.0)
        assert acc.nbytes > before


class TestProbeAccounting:
    def test_spa_probes_scale_with_size(self):
        spa = SparseAccumulator()
        for i in range(10):
            spa.add(i, 1.0)
        probes_10 = spa.probes
        spa2 = SparseAccumulator()
        for i in range(100):
            spa2.add(i, 1.0)
        # Linear search: probes grow ~quadratically with distinct keys.
        assert spa2.probes > probes_10 * 50

    def test_spa_batch_probes_linear_work(self):
        spa = SparseAccumulator()
        spa.add_many(
            np.arange(100, dtype=np.int64), np.ones(100)
        )
        first = spa.probes
        spa.add_many(np.arange(100, dtype=np.int64), np.ones(100))
        # Second batch scans 100 existing entries per key.
        assert spa.probes - first >= 100 * 100

    def test_hash_probes_stay_near_constant(self):
        acc = HashAccumulator(num_buckets=4096)
        acc.add_many(np.arange(2000, dtype=np.int64), np.ones(2000))
        # Expected O(1) per operation at load factor < 1.
        assert acc.probes < 4 * 2000
