"""Tests for shared utilities: timing, validation, table formatting."""

import pytest

from repro.errors import ShapeError
from repro.experiments.fmt import format_table
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_modes,
    check_nonneg_int,
    check_positive_int,
    check_shape,
)


class TestStopwatch:
    def test_measure_accumulates(self):
        times = iter([0.0, 1.0, 5.0, 7.5])
        sw = Stopwatch(clock=lambda: next(times))
        with sw.measure("a"):
            pass
        with sw.measure("a"):
            pass
        assert sw.totals["a"] == pytest.approx(3.5)
        assert sw.total() == pytest.approx(3.5)

    def test_measure_survives_exception(self):
        times = iter([0.0, 2.0])
        sw = Stopwatch(clock=lambda: next(times))
        with pytest.raises(RuntimeError):
            with sw.measure("x"):
                raise RuntimeError("boom")
        assert sw.totals["x"] == pytest.approx(2.0)

    def test_add_and_fractions(self):
        sw = Stopwatch()
        sw.add("a", 3.0)
        sw.add("b", 1.0)
        fr = sw.fractions()
        assert fr["a"] == pytest.approx(0.75)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert Stopwatch().fractions() == {}


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(3, "n") == 3
        for bad in (0, -1, 1.5, True, "3"):
            with pytest.raises(ShapeError):
                check_positive_int(bad, "n")

    def test_nonneg_int(self):
        assert check_nonneg_int(0, "n") == 0
        with pytest.raises(ShapeError):
            check_nonneg_int(-1, "n")

    def test_shape(self):
        assert check_shape((2, 3)) == (2, 3)
        with pytest.raises(ShapeError):
            check_shape(())
        with pytest.raises(ShapeError):
            check_shape((2, 0))

    def test_modes(self):
        assert check_modes((2, 0), 3, "m") == (2, 0)
        with pytest.raises(ShapeError):
            check_modes((3,), 3, "m")
        with pytest.raises(ShapeError):
            check_modes((0, 0), 3, "m")
        with pytest.raises(ShapeError):
            check_modes((-1,), 3, "m")


class TestFormatTable:
    def test_alignment(self):
        out = format_table(
            ["name", "value"],
            [["a", 1.0], ["longer", 123456.0]],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        # All data rows have the same width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/sep/data may differ by padding

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000123], [12.5], [1234.0], [0.0]])
        assert "0.000123" in out
        assert "12.50" in out
        assert "1234" in out
