"""Tests for the ttt command-line tool."""

import os

import pytest

from repro.tensor import random_tensor, read_tns, write_tns
from repro.ttt import main


@pytest.fixture
def tns_pair(tmp_path):
    x = random_tensor((6, 5, 4, 3), 40, seed=151)
    y = random_tensor((4, 3, 7), 30, seed=152)
    xp, yp = tmp_path / "x.tns", tmp_path / "y.tns"
    write_tns(x, xp)
    write_tns(y, yp)
    return str(xp), str(yp), x, y


class TestTTT:
    def test_basic_run(self, tns_pair, capsys):
        xp, yp, *_ = tns_pair
        code = main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine: sparta" in out
        assert "total:" in out

    def test_output_file(self, tns_pair, tmp_path, capsys):
        xp, yp, x, y = tns_pair
        zp = tmp_path / "z.tns"
        code = main(["-X", xp, "-Y", yp, "-Z", str(zp), "-m", "2",
                     "-x", "2", "3", "-y", "0", "1"])
        assert code == 0
        from repro.core import contract

        z = read_tns(zp)
        ref = contract(x, y, (2, 3), (0, 1), method="dense")
        assert z.allclose(ref.tensor)

    @pytest.mark.parametrize("mode,engine", [
        ("0", "spa"), ("1", "coo_hta"), ("3", "sparta"),
    ])
    def test_experiment_modes(self, tns_pair, capsys, monkeypatch,
                              mode, engine):
        xp, yp, *_ = tns_pair
        monkeypatch.setenv("EXPERIMENT_MODES", mode)
        assert main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1"]) == 0
        assert f"engine: {engine}" in capsys.readouterr().out

    def test_mode_4_hm_simulation(self, tns_pair, capsys, monkeypatch):
        xp, yp, *_ = tns_pair
        monkeypatch.setenv("EXPERIMENT_MODES", "4")
        assert main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous-memory simulation" in out
        assert "optane-only" in out

    def test_threads(self, tns_pair, capsys):
        xp, yp, *_ = tns_pair
        assert main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1", "-t", "3"]) == 0
        assert "threads: 3" in capsys.readouterr().out

    def test_mode_count_mismatch(self, tns_pair, capsys):
        xp, yp, *_ = tns_pair
        assert main(["-X", xp, "-Y", yp, "-m", "1",
                     "-x", "2", "3", "-y", "0", "1"]) == 2

    def test_bad_experiment_mode(self, tns_pair, monkeypatch):
        xp, yp, *_ = tns_pair
        monkeypatch.setenv("EXPERIMENT_MODES", "9")
        assert main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1"]) == 2

    @pytest.mark.parametrize("policy", [
        "dynamic:lookahead", "dynamic:ewma",
        "dynamic:inclusive", "dynamic:hybrid",
    ])
    def test_dynamic_placement_mode_4(self, tns_pair, capsys,
                                      monkeypatch, policy):
        xp, yp, *_ = tns_pair
        monkeypatch.setenv("EXPERIMENT_MODES", "4")
        assert main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1",
                     "--placement", policy]) == 0
        out = capsys.readouterr().out
        assert policy in out
        assert "migrations" in out
        assert "x of sparta" in out

    def test_ial_placement_mode_4(self, tns_pair, capsys, monkeypatch):
        xp, yp, *_ = tns_pair
        monkeypatch.setenv("EXPERIMENT_MODES", "4")
        assert main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1",
                     "--placement", "ial"]) == 0
        assert "ial" in capsys.readouterr().out

    def test_placement_requires_mode_4(self, tns_pair, capsys,
                                       monkeypatch):
        xp, yp, *_ = tns_pair
        monkeypatch.setenv("EXPERIMENT_MODES", "3")
        assert main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1",
                     "--placement", "dynamic:lookahead"]) == 2

    def test_dynamic_placement_metrics(self, tns_pair, tmp_path,
                                       monkeypatch):
        import json

        xp, yp, *_ = tns_pair
        mp = tmp_path / "metrics.json"
        monkeypatch.setenv("EXPERIMENT_MODES", "4")
        assert main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1",
                     "--placement", "dynamic:inclusive",
                     "--metrics", str(mp)]) == 0
        payload = json.loads(mp.read_text())
        assert payload["memory.migration.policy"] == "inclusive"
        assert payload["memory.migration.inclusive"] == 1
        assert payload["memory.migration.runs"] == 1


class TestTTTServed:
    @pytest.fixture(scope="class")
    def serve_url(self):
        from repro.serve import (
            ServeConfig,
            SpTCServer,
            TcpServeServer,
        )

        server = SpTCServer(
            ServeConfig(workers=1, execution="inline")
        ).start()
        front = TcpServeServer(server).start()
        yield front.url
        front.stop()
        server.close()

    def test_served_roundtrip_matches_local(self, tns_pair, tmp_path,
                                            capsys, serve_url):
        xp, yp, x, y = tns_pair
        zp = tmp_path / "z.tns"
        code = main(["-X", xp, "-Y", yp, "-Z", str(zp), "-m", "2",
                     "-x", "2", "3", "-y", "0", "1",
                     "--serve-url", serve_url])
        assert code == 0
        out = capsys.readouterr().out
        assert f"served via {serve_url}" in out
        assert "total:" in out
        from repro.core import contract

        ref = contract(x, y, (2, 3), (0, 1))
        assert read_tns(zp).allclose(ref.tensor)

    def test_served_rejects_local_only_flags(self, tns_pair, tmp_path,
                                             serve_url):
        xp, yp, *_ = tns_pair
        assert main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1",
                     "--serve-url", serve_url,
                     "--trace", str(tmp_path / "t.json")]) == 2

    def test_served_rejects_hm_simulation_mode(self, tns_pair,
                                               monkeypatch, serve_url):
        xp, yp, *_ = tns_pair
        monkeypatch.setenv("EXPERIMENT_MODES", "4")
        assert main(["-X", xp, "-Y", yp, "-m", "2",
                     "-x", "2", "3", "-y", "0", "1",
                     "--serve-url", serve_url]) == 2
