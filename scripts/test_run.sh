#!/usr/bin/env bash
# A quick end-to-end check, mirroring the artifact's run/test_run.sh:
# validates every engine on every dataset, then exercises the ttt CLI.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cross-engine validation sweep =="
python -m repro.experiments.validate --scale 0.05

echo
echo "== ttt CLI smoke test =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
python - "$tmpdir" <<'EOF'
import sys
from repro.tensor import random_tensor, write_tns
out = sys.argv[1]
write_tns(random_tensor((30, 20, 16, 12), 800, seed=1), f"{out}/x.tns")
write_tns(random_tensor((16, 12, 24, 18), 1200, seed=2), f"{out}/y.tns")
EOF
for mode in 0 1 3 4; do
  echo "-- EXPERIMENT_MODES=$mode"
  EXPERIMENT_MODES=$mode python -m repro.ttt \
    -X "$tmpdir/x.tns" -Y "$tmpdir/y.tns" -Z "$tmpdir/z.tns" \
    -m 2 -x 2 3 -y 0 1 | tail -3
done
echo
echo "test_run: all good"
