"""Compile-and-run every generated-kernel template variant warning-free.

CI runs this under ``python -W error``: any warning a generated kernel
raises (numpy deprecations, overflow warnings from a bad literal fold,
syntax deprecations in the emitted source) fails the job. Every
rendering branch is exercised — power-of-two and non-power-of-two free
spaces, single- and multi-mode delinearizers, and all three runtime
strategies (dense workspace, packed quicksort, lexsort fallback) — and
each variant's output is checked against the generic stable reduction,
so a template edit that compiles but mis-specializes is caught here
before the (slower) differential suite runs.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.codegen import (
    KernelSignature,
    compile_kernel,
    render_delinearizer,
    render_fused_kernel,
)
from repro.tensor.linearize import delinearize

#: free-mode extent sets covering every specialization branch:
#: pow2 space (shift/mask), non-pow2 (mul/div), mixed per-mode strides
FREE_DIM_SETS = [
    (4,),
    (5,),
    (4, 8),            # pow2 space, pow2 strides
    (3, 5),            # non-pow2 everything
    (2, 3, 4),         # mixed: stride 12 then 4
    (8, 7, 16),        # mixed: pow2 modes around a non-pow2 one
    (1, 1, 6),         # degenerate unit modes
    (1 << 55,),        # key-overflow regime → lexsort strategy
]

CONTRACT_DIM_SETS = [(3,), (3, 2)]

#: (dense_threshold, workspace_cap) pairs forcing each strategy
STRATEGY_KNOBS = [
    (0.0, 1 << 22),    # dense whenever the workspace fits the cap
    (2.0, 0),          # cap 0 knocks out dense → packed (or lexsort)
    (0.5, 1 << 22),    # production defaults → runtime's own choice
]


def reference_reduce(vals, fy, seg):
    perm = np.lexsort((fy, seg))
    seg_s, fy_s, vals_s = seg[perm], fy[perm], vals[perm]
    mask = np.empty(vals.shape[0], dtype=bool)
    mask[0] = True
    mask[1:] = (seg_s[1:] != seg_s[:-1]) | (fy_s[1:] != fy_s[:-1])
    boundary = np.flatnonzero(mask)
    sums = np.bincount(
        np.cumsum(mask) - 1, weights=vals_s,
        minlength=boundary.shape[0],
    )
    return seg_s[boundary], fy_s[boundary], sums


def chunk_case(fy_space, seed, n=400, span=3):
    rng = np.random.default_rng(seed)
    vals = rng.standard_normal(n)
    fy = rng.integers(0, min(fy_space, 1 << 20), size=n).astype(np.int64)
    seg = np.sort(rng.integers(0, span, size=n)).astype(np.int64)
    return vals, fy, seg


def check_fused(free_dims, contract_dims) -> set:
    sig = KernelSignature(
        x_order=2 + len(contract_dims),
        y_order=len(contract_dims) + len(free_dims),
        contract_dims=contract_dims,
        free_dims=free_dims,
        accumulator="hash",
        dtype="float64",
    )
    kern = compile_kernel(
        render_fused_kernel(sig), "fused_chunk",
        label=f"check:{free_dims}",
    )
    fy_space = sig.fy_space
    vals, fy, seg = chunk_case(fy_space, seed=hash(free_dims) % 1000)
    ref = reference_reduce(vals, fy, seg)
    seen = set()
    for threshold, cap in STRATEGY_KNOBS:
        o_seg, o_fy, o_vals, strategy = kern(vals, fy, seg, threshold, cap)
        seen.add(strategy)
        ok = (
            np.array_equal(o_seg, ref[0])
            and np.array_equal(o_fy, ref[1])
            and np.array_equal(
                o_vals.view(np.uint64), ref[2].view(np.uint64)
            )
        )
        if not ok:
            raise SystemExit(
                f"FAIL fused free_dims={free_dims} "
                f"strategy={strategy}: output differs from reference"
            )
    return seen


def check_delinearizer(free_dims) -> None:
    if int(np.prod(free_dims)) > (1 << 40):
        return  # delinearizers only ever see in-range LN keys
    delin = compile_kernel(
        render_delinearizer(free_dims), "delinearize_fy",
        label=f"check:{free_dims}",
    )
    rng = np.random.default_rng(7)
    keys = rng.integers(
        0, int(np.prod(free_dims)), size=256
    ).astype(np.int64)
    out = np.empty((keys.shape[0], len(free_dims)), dtype=np.int64)
    delin(keys, out)
    if not np.array_equal(out, delinearize(keys, free_dims)):
        raise SystemExit(
            f"FAIL delinearizer free_dims={free_dims}: "
            f"differs from generic delinearize"
        )


def main() -> int:
    variants = 0
    strategies = set()
    for free_dims in FREE_DIM_SETS:
        for contract_dims in CONTRACT_DIM_SETS:
            strategies |= check_fused(free_dims, contract_dims)
            variants += 1
        check_delinearizer(free_dims)
        variants += 1
    missing = {"dense", "packed", "lexsort"} - strategies
    if missing:
        raise SystemExit(
            f"FAIL: runtime strategies never exercised: {sorted(missing)}"
        )
    print(
        f"ok: {variants} template variants compiled and verified "
        f"({', '.join(sorted(strategies))}) warning-free"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
