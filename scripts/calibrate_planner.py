#!/usr/bin/env python
"""Fit or validate the planner's calibration profile.

Three modes:

``python scripts/calibrate_planner.py``
    Fit: measure serial stage seconds and parallel overheads on the
    registry workloads, solve for the 13 coefficients, and print a
    report. Add ``--write`` to persist the fitted profile to
    ``src/repro/planner/calibration.json``.

``python scripts/calibrate_planner.py --check``
    Machine-independent CI gate: load the committed calibration (its
    constructor validates version and coefficient shape) and replay the
    decision snapshots in ``tests/planner/decision_snapshots.json`` —
    choices are pure functions of (stats, coefficients), so they must
    reproduce exactly on any machine. Exit 0 iff everything matches.

``python scripts/calibrate_planner.py --write-snapshots``
    Regenerate the decision-snapshot corpus from the committed
    calibration. Run after ``--write`` whenever a re-fit flips a
    decision (``--check`` and ``tests/planner/test_decisions.py`` fail
    loudly until the snapshots are deliberately refreshed).

Timing fits are machine-dependent by design — that is the point of a
calibration — which is why CI only ever runs ``--check``.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.core.htycache import LRUCache, cached_plan  # noqa: E402
from repro.core.sparta import sparta  # noqa: E402
from repro.core.stages import Stage  # noqa: E402
from repro.datasets import make_case  # noqa: E402
from repro.parallel.executor import parallel_sparta  # noqa: E402
from repro.planner import (  # noqa: E402
    CALIBRATION_VERSION,
    CalibrationProfile,
    ContractionStats,
    CostModel,
    builtin_calibration,
    choose_plan,
    contraction_stats,
    predicted_accumulator,
)
from repro.planner.calibration import CALIBRATION_PATH  # noqa: E402
from repro.tensor.random import random_tensor  # noqa: E402

SNAPSHOT_PATH = REPO / "tests" / "planner" / "decision_snapshots.json"

#: wall-clock floor under which a stage sample is too noisy to use
MIN_SAMPLE_SECONDS = 5e-5

#: timing workloads: (label, dataset, n_modes, scale)
FIT_WORKLOADS = [
    ("nips-1", "nips", 1, 0.3),
    ("nips-2", "nips", 2, 0.3),
    ("chicago-1", "chicago", 1, 0.3),
    ("chicago-2", "chicago", 2, 0.3),
    ("nell2-1", "nell2", 1, 0.3),
    ("uber-1", "uber", 1, 0.3),
    ("uracil-3", "uracil", 3, 0.2),
    ("vast-2", "vast", 2, 0.3),
]

#: workloads the parallel efficiencies are grid-fitted on — both
#: thread-friendly shapes and the small uracil case where workers
#: regress (PR 3's benchmark finding) must be represented
PARALLEL_WORKLOADS = [
    ("chicago-2", "chicago", 2, 0.3),
    ("nips-1", "nips", 1, 0.3),
    ("nell2-1", "nell2", 1, 0.3),
    ("uracil-3", "uracil", 3, 0.2),
]


# ----------------------------------------------------------------------
# snapshot corpus
# ----------------------------------------------------------------------
def _reference_cases() -> List[dict]:
    """The frozen decision-regression corpus (deterministic builders).

    ~20 cases spanning the regimes the planner separates: registry
    workloads (incl. the uracil 3-mode shape the PR 3 benchmarks showed
    regressing under threads), sub-20k-product smalls that must route
    serial, dense-workspace vs hash-accumulator shapes, and the
    max_workers / sort_output axes.
    """
    cases: List[Tuple[str, object, object, tuple, tuple, int, bool]] = []

    def dataset(name, ds, n, scale, *, workers=4, sort=True, seed=0):
        case = make_case(ds, n, scale=scale, seed=seed)
        cases.append((name, case.x, case.y, case.cx, case.cy,
                      workers, sort))

    def random(name, xs, xn, ys, yn, cx, cy, *, workers=4, sort=True,
               sx=0, sy=1):
        x = random_tensor(xs, xn, seed=sx)
        y = random_tensor(ys, yn, seed=sy)
        cases.append((name, x, y, tuple(cx), tuple(cy), workers, sort))

    dataset("nips-1", "nips", 1, 0.2)
    dataset("nips-2", "nips", 2, 0.2)
    dataset("chicago-1", "chicago", 1, 0.2)
    dataset("chicago-2", "chicago", 2, 0.2)
    dataset("nell2-1", "nell2", 1, 0.2)
    dataset("nell2-2", "nell2", 2, 0.2)
    dataset("uber-1", "uber", 1, 0.2)
    dataset("uracil-3", "uracil", 3, 0.2)
    dataset("uracil-3-w8", "uracil", 3, 0.2, workers=8)
    dataset("vast-2", "vast", 2, 0.2)
    dataset("flickr-1", "flickr", 1, 0.1)
    dataset("chicago-2-nosort", "chicago", 2, 0.2, sort=False)
    dataset("nips-1-w2", "nips", 1, 0.2, workers=2)
    # sub-20k-product smalls: the executor's serial-routing regime
    random("small-3d", (8, 7, 6), 60, (6, 9), 40, (2,), (0,))
    random("small-4d", (6, 5, 4, 3), 80, (4, 3, 7), 50, (2, 3), (0, 1))
    random("small-dense-ws", (20, 15, 12), 600, (12, 9), 60, (2,), (0,))
    random("tiny-matmul", (9, 9), 30, (9, 9), 30, (1,), (0,))
    random("mid-3d", (60, 50, 40), 8000, (40, 30), 2000, (2,), (0,))
    random("mid-4d", (40, 30, 12, 10), 18000, (12, 10, 25, 20), 16000,
           (2, 3), (0, 1), sx=7, sy=8)
    random("mid-4d-w2", (40, 30, 12, 10), 18000, (12, 10, 25, 20),
           16000, (2, 3), (0, 1), workers=2, sx=7, sy=8)

    out = []
    for name, x, y, cx, cy, workers, sort in cases:
        plan = cached_plan(x, y, cx, cy)
        out.append({
            "name": name,
            "max_workers": workers,
            "sort_output": sort,
            "stats": contraction_stats(x, y, plan).to_dict(),
        })
    return out


def write_snapshots(model: CostModel) -> None:
    cases = _reference_cases()
    for case in cases:
        decision = choose_plan(
            ContractionStats.from_dict(case["stats"]),
            model=model,
            max_workers=case["max_workers"],
            sort_output=case["sort_output"],
            cache=None,
        )
        case["decision"] = decision.to_dict()
    doc = {"version": CALIBRATION_VERSION, "cases": cases}
    SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
    SNAPSHOT_PATH.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {len(cases)} decision snapshots: {SNAPSHOT_PATH}")


def check() -> int:
    """Validate the committed calibration + snapshots; 0 iff clean."""
    try:
        profile = CalibrationProfile.load(CALIBRATION_PATH)
    except Exception as exc:  # noqa: BLE001 - report any load failure
        print(f"FAIL: calibration.json invalid: {exc}")
        return 1
    print(
        f"calibration v{profile.version} ({profile.fitted_on}): "
        f"{len(profile.coefficients)} coefficients OK"
    )
    if not SNAPSHOT_PATH.exists():
        print(f"FAIL: missing snapshot corpus {SNAPSHOT_PATH}")
        return 1
    doc = json.loads(SNAPSHOT_PATH.read_text())
    if doc.get("version") != CALIBRATION_VERSION:
        print(
            f"FAIL: snapshot version {doc.get('version')} != "
            f"{CALIBRATION_VERSION}"
        )
        return 1
    model = CostModel(calibration=profile)
    failures = 0
    for case in doc["cases"]:
        stats = ContractionStats.from_dict(case["stats"])
        decision = choose_plan(
            stats,
            model=model,
            max_workers=case["max_workers"],
            sort_output=case["sort_output"],
            cache=LRUCache(maxsize=4),
        )
        expected = case["decision"]
        # canonicalize through JSON: to_dict holds tuples where the
        # stored snapshot holds lists
        got = json.loads(json.dumps(decision.to_dict()))
        if got != expected:
            failures += 1
            print(
                f"FAIL: {case['name']}: chose "
                f"{decision.chosen.label} "
                f"(expected {expected['chosen']})"
            )
    n = len(doc["cases"])
    if failures:
        print(
            f"{failures}/{n} decisions drifted — re-run "
            "scripts/calibrate_planner.py --write-snapshots and review "
            "tests/planner/test_decisions.py"
        )
        return 1
    print(f"all {n} snapshot decisions reproduce")
    return 0


# ----------------------------------------------------------------------
# fitting
# ----------------------------------------------------------------------
def _best_of(fn, repeats: int = 3):
    """Best (minimum-total) run of *fn*; returns its result."""
    best, best_seconds = None, None
    for _ in range(repeats):
        result, seconds = fn()
        if best_seconds is None or seconds < best_seconds:
            best, best_seconds = result, seconds
    return best, best_seconds


def _median_ratio(samples: List[Tuple[float, float]],
                  fallback: float) -> float:
    """Median of seconds/count over usable samples, or *fallback*."""
    ratios = [
        s / c for s, c in samples if c > 0 and s >= MIN_SAMPLE_SECONDS
    ]
    return statistics.median(ratios) if ratios else fallback


def _measure_serial() -> Tuple[List[dict], Dict[str, int]]:
    """Per-workload serial stage seconds + statistics."""
    rows = []
    for label, ds, n, scale in FIT_WORKLOADS:
        case = make_case(ds, n, scale=scale, seed=0)
        plan = cached_plan(case.x, case.y, case.cx, case.cy)
        stats = contraction_stats(case.x, case.y, plan)

        def run():
            t0 = time.perf_counter()
            res = sparta(
                case.x, case.y, case.cx, case.cy,
                swap_larger_to_y=False,
            )
            return res, time.perf_counter() - t0

        res, _ = _best_of(run)
        rows.append({
            "label": label,
            "stats": stats,
            "accumulator": predicted_accumulator(stats),
            "stage_seconds": {
                s.value: res.profile.stage_seconds.get(s, 0.0)
                for s in Stage
            },
        })
        print(f"  serial {label}: "
              f"{res.profile.total_seconds * 1e3:8.2f} ms "
              f"({rows[-1]['accumulator']})")
    return rows


def _fit_serial(rows: List[dict],
                coeff: Dict[str, float]) -> None:
    """Solve the serial per-element coefficients from stage samples."""
    s1 = Stage.INPUT_PROCESSING.value
    s2 = Stage.INDEX_SEARCH.value
    s3 = Stage.ACCUMULATION.value
    s4 = Stage.WRITEBACK.value
    s5 = Stage.OUTPUT_SORTING.value
    coeff["sort_unit"] = _median_ratio(
        [(r["stage_seconds"][s5], r["stats"].sort_z_units)
         for r in rows],
        coeff["sort_unit"],
    )
    coeff["hty_build"] = _median_ratio(
        [(max(r["stage_seconds"][s1]
              - coeff["sort_unit"] * r["stats"].sort_x_units, 0.0),
          r["stats"].nnz_y) for r in rows],
        coeff["hty_build"],
    )
    coeff["probe"] = _median_ratio(
        [(r["stage_seconds"][s2], r["stats"].nnz_x) for r in rows],
        coeff["probe"],
    )
    for acc, name in (("hash", "product_hash"),
                      ("dense", "product_dense")):
        coeff[name] = _median_ratio(
            [(r["stage_seconds"][s3], r["stats"].est_products)
             for r in rows if r["accumulator"] == acc],
            coeff[name],
        )
    # keep the model's dense-beats-hash ordering even if only one side
    # of the accumulator gate had measurable workloads
    if coeff["product_dense"] >= coeff["product_hash"]:
        coeff["product_dense"] = coeff["product_hash"] / 2.0
    coeff["writeback"] = _median_ratio(
        [(r["stage_seconds"][s4], r["stats"].est_created)
         for r in rows],
        coeff["writeback"],
    )


def _measure_parallel(coeff: Dict[str, float],
                      info: Dict[str, float]) -> None:
    """Fit pool overheads, efficiencies and the merge coefficient.

    Overheads come from tiny near-zero-work runs (wall minus the serial
    wall of the same inputs, solved across two worker counts). The
    efficiency coefficients are then grid-fitted: for each backend,
    pick the value minimizing the squared log-ratio between the
    model-predicted candidate wall and the measured wall over the
    parallel-fit workloads — this captures both the regimes where
    workers pay off (large grouped stages) and where they regress
    (small contractions like the uracil 3-mode case), instead of
    inverting Amdahl's law on one noisy sample.
    """
    tiny_x = random_tensor((6, 5, 4), 40, seed=0)
    tiny_y = random_tensor((4, 3), 8, seed=1)

    def tiny_serial():
        t0 = time.perf_counter()
        sparta(tiny_x, tiny_y, (2,), (0,), swap_larger_to_y=False)
        return None, time.perf_counter() - t0

    _, tiny_serial_wall = _best_of(tiny_serial)
    for backend in ("thread", "process"):
        overheads = {}
        for w in (2, 4):
            def tiny_par(w=w):
                t0 = time.perf_counter()
                parallel_sparta(
                    tiny_x, tiny_y, (2,), (0,), threads=w,
                    backend=backend, planner="off",
                )
                return None, time.perf_counter() - t0

            _, wall = _best_of(tiny_par)
            overheads[w] = max(wall - tiny_serial_wall, 1e-6)
        worker = max((overheads[4] - overheads[2]) / 2.0, 1e-6)
        coeff[f"{backend}_worker"] = worker
        coeff[f"{backend}_pool"] = max(
            overheads[2] - 2.0 * worker, 1e-6
        )

    samples = []   # per workload: dict with stats/acc/walls
    for label, ds, n, scale in PARALLEL_WORKLOADS:
        case = make_case(ds, n, scale=scale, seed=0)
        plan = cached_plan(case.x, case.y, case.cx, case.cy)
        stats = contraction_stats(case.x, case.y, plan)

        def serial_run():
            t0 = time.perf_counter()
            sparta(case.x, case.y, case.cx, case.cy,
                   swap_larger_to_y=False)
            return None, time.perf_counter() - t0

        _, serial_wall = _best_of(serial_run, repeats=5)
        sample = {
            "label": label,
            "stats": stats,
            "acc": predicted_accumulator(stats),
            "serial_wall": serial_wall,
            "walls": {},
        }
        for backend, workers in (
            ("thread", 2), ("thread", 4), ("process", 4),
        ):
            def par_run(backend=backend, workers=workers):
                t0 = time.perf_counter()
                parallel_sparta(
                    case.x, case.y, case.cx, case.cy,
                    threads=workers, backend=backend, planner="off",
                )
                return None, time.perf_counter() - t0

            _, wall = _best_of(par_run, repeats=5)
            sample["walls"][(backend, workers)] = wall
            print(f"  {label} {backend} x{workers}: "
                  f"{wall * 1e3:8.2f} ms "
                  f"(serial {serial_wall * 1e3:.2f} ms)")
        samples.append(sample)

    def score(backend: str, trial: Dict[str, float]) -> float:
        """Decision mismatches (dominant) + log-sq wall error.

        A coefficient set that predicts a worker count will pay off
        where the measurement says it regresses (or vice versa) is
        penalized far above any wall-seconds residual — the planner is
        judged on its choices, not its absolute estimates.
        """
        model = CostModel(calibration=CalibrationProfile(
            version=CALIBRATION_VERSION, coefficients=trial,
        ))
        err, mismatches = 0.0, 0
        for s in samples:
            pred_serial = model.estimate(
                s["stats"], engine="serial", accumulator=s["acc"],
            ).seconds
            preds, walls = [], []
            for (b, w), wall in s["walls"].items():
                if b != backend:
                    continue
                pred = model.estimate(
                    s["stats"], engine=b, workers=w,
                    accumulator=s["acc"],
                ).seconds
                err += math.log(max(pred, 1e-9) / wall) ** 2
                preds.append(pred)
                walls.append(wall)
            # measured "parallel wins" needs a 5% margin: at a tie the
            # planner must stay serial (its own tie rule, and the
            # benchmark gate pins the uracil 3-mode case to serial)
            if preds and (
                (min(preds) < pred_serial)
                != (min(walls) < 0.95 * s["serial_wall"])
            ):
                mismatches += 1
        return 1e3 * mismatches + err

    # thread efficiency and the merge coefficient interact (the
    # merge-vs-sort stage-5 discount is efficiency-independent), so
    # they are fitted jointly; process reuses the fitted merge_unit.
    merge_grid = [
        coeff["sort_unit"] * m
        for m in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
    ]
    best = None
    for merge_unit in merge_grid:
        for step in range(1, 31):
            trial = dict(coeff)
            trial["merge_unit"] = merge_unit
            trial["thread_efficiency"] = step / 50.0
            penalty = score("thread", trial)
            if best is None or penalty < best[0]:
                best = (penalty, trial["thread_efficiency"], merge_unit)
    _, coeff["thread_efficiency"], coeff["merge_unit"] = best
    info["thread_fit_penalty"] = float(best[0])
    print(f"  thread efficiency -> {coeff['thread_efficiency']:.2f}, "
          f"merge_unit -> {coeff['merge_unit']:.3g} "
          f"(penalty {best[0]:.3f})")
    best = None
    for step in range(1, 31):
        trial = dict(coeff)
        trial["process_efficiency"] = step / 50.0
        penalty = score("process", trial)
        if best is None or penalty < best[0]:
            best = (penalty, trial["process_efficiency"])
    coeff["process_efficiency"] = best[1]
    info["process_fit_penalty"] = float(best[0])
    print(f"  process efficiency -> {coeff['process_efficiency']:.2f} "
          f"(penalty {best[0]:.3f})")


def fit(write: bool) -> int:
    coeff = dict(builtin_calibration().coefficients)
    info: Dict[str, float] = {}
    print("measuring serial stage seconds:")
    rows = _measure_serial()
    _fit_serial(rows, coeff)
    print("measuring parallel overheads/efficiency:")
    _measure_parallel(coeff, info)
    info["serial_workloads"] = float(len(rows))
    profile = CalibrationProfile(
        version=CALIBRATION_VERSION,
        coefficients=coeff,
        fitted_on=(
            f"fitted on {platform.node() or 'unknown-host'} "
            f"({platform.machine()}, python {platform.python_version()})"
        ),
        fit_info=info,
    )
    print("fitted coefficients:")
    for name in sorted(coeff):
        print(f"  {name:20s} {coeff[name]:.4g}")
    model = CostModel(calibration=profile)
    print("decisions with the fitted profile (max_workers=4):")
    for row in rows:
        decision = choose_plan(
            row["stats"], model=model, max_workers=4, cache=None
        )
        print(f"  {row['label']:12s} -> {decision.chosen.label}")
    if write:
        profile.save(CALIBRATION_PATH)
        print(f"wrote {CALIBRATION_PATH}")
        print("now refresh the decision corpus: "
              "scripts/calibrate_planner.py --write-snapshots")
    else:
        print("(dry run; pass --write to persist)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", action="store_true",
        help="validate the committed calibration + decision snapshots "
             "(machine-independent; the CI gate)",
    )
    mode.add_argument(
        "--write-snapshots", action="store_true",
        help="regenerate tests/planner/decision_snapshots.json from "
             "the committed calibration",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="persist the fitted profile to calibration.json",
    )
    args = parser.parse_args(argv)
    if args.check or args.write_snapshots:
        # decisions embed the codegen gate's accumulator prediction, so
        # the corpus is defined under the default environment (codegen
        # on); neutralize a stray kill-switch for reproducibility
        import os

        os.environ.pop("REPRO_NO_CODEGEN", None)
    if args.check:
        return check()
    if args.write_snapshots:
        write_snapshots(CostModel())
        return 0
    return fit(write=args.write)


if __name__ == "__main__":
    raise SystemExit(main())
